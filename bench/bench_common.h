// Shared setup for the paper-reproduction benches.
//
// Every bench regenerates one table or figure of the paper. They all
// share the experimental setup of §4.1: Meta's DLRM with 8 duplicated
// EMTs of 32-dim embeddings, batch size 64, 12,800 sampled inferences,
// and the Table 2 UPMEM system (256 DPUs @ 350 MHz, 14 tasklets).
//
// By default benches run a reduced 640-sample trace (10 batches) so
// the whole suite completes in minutes on one core; per-batch results
// are unchanged because all timing models are per-batch. Pass --full
// for the paper's 12,800 samples, or --samples=N explicitly.
//
// --threads=N sets the host worker pool width (0 = all hardware
// threads, 1 = serial). Threads change wall-clock time only: every
// simulated latency and functional result is thread-count invariant
// (DESIGN.md §"Host execution backend"). Each bench self-times its
// wall clock via HostTimer and merges the measurement into
// BENCH_host.json, so speedup from --threads is directly observable.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/systems.h"
#include "cache/grace.h"
#include "common/cli.h"
#include "dlrm/model.h"
#include "pim/system.h"
#include "telemetry/monitor.h"
#include "telemetry/registry.h"
#include "trace/dataset.h"
#include "trace/generator.h"
#include "trace/profiler.h"
#include "updlrm/engine.h"

namespace updlrm::core {
class ShardedEngine;
}  // namespace updlrm::core

namespace updlrm::bench {

struct BenchScale {
  std::size_t num_samples = 640;
  std::size_t batch_size = 64;
  /// Host pool width (0 = hardware concurrency, 1 = serial).
  std::uint32_t threads = 0;
  /// Trace seed override (0 = each dataset spec's own base seed).
  std::uint64_t seed = 0;
  /// Arrival process for serving benches ("poisson" | "uniform" |
  /// "bursty"); ignored by the offline benches.
  std::string arrival = "poisson";
  /// Embedding hot-path levers (EngineOptions::{dedup, wram_cache_rows,
  /// coalesce_transfers}); all default off so bench output matches the
  /// paper baseline unless explicitly enabled.
  bool dedup = false;
  std::uint32_t wram = 0;
  bool coalesce = false;
  /// Hardware-contract checker (EngineOptions::check_mode): shadow
  /// MRAM/DMA validation, plan audits and the model/sim cross-audit on
  /// every engine the bench creates. The bench aborts with the
  /// violation report if any rule fires (see AssertChecksClean).
  bool check = false;
  /// serve_latency only: restrict the bench to the end-to-end pipeline
  /// section (tuned data flow, CTR path spans) and skip the
  /// per-method embedding sweep — the CI smoke configuration. The
  /// default (false) runs both sections.
  bool e2e = false;
  /// Chrome-trace output path; empty = tracing off. Benches honoring
  /// it scope a TraceSession around one representative run (simulated
  /// clocks restart at 0 per run, so tracing several runs into one
  /// file would overlap in the viewer).
  std::string trace_out;
  /// Trace 1-in-N batches/requests (TracerOptions::sample_every). The
  /// skipped spans are counted, never silently dropped.
  std::uint64_t trace_sample_every = 1;
  /// DPU count override for MakePaperSystem(scale); 0 keeps the Table 2
  /// default (256). The scale-out benches use this to size one replica
  /// or shard slice.
  std::uint32_t dpus = 0;
  /// Rank count override: num_dpus must divide evenly; 0 keeps the
  /// Table 2 default (4 ranks of 64).
  std::uint32_t ranks = 0;
  /// Fleet-health JSONL output path (--health-out); empty = monitoring
  /// off. Benches honoring it attach a FleetMonitor to one
  /// representative serve run (the same run --trace-out captures).
  std::string health_out;
  /// Monitor window width in simulated microseconds (--health-window-us).
  double health_window_us = 100.0;
};

/// Parses --samples / --full / --batch / --threads / --seed / --arrival
/// / --dedup / --wram=N / --coalesce / --check / --e2e /
/// --trace-out=PATH / --trace-sample-every=N / --health-out=PATH /
/// --health-window-us=N from argv; sizes the process-wide default pool
/// and prints a scale banner.
BenchScale ParseScale(int argc, const char* const* argv);

struct Workload {
  trace::DatasetSpec spec;
  dlrm::DlrmConfig config;  // 8 tables x (num_items x 32), dense 13
  trace::Trace trace;
};

/// Generates the trace for one §4.1 workload at the given scale.
Workload PrepareWorkload(const trace::DatasetSpec& spec,
                         const BenchScale& scale);

/// The Table 2 UPMEM system: 256 DPUs, 4 ranks, paper defaults.
/// Timing-only (full-scale tables are never materialized in benches).
std::unique_ptr<pim::DpuSystem> MakePaperSystem();

/// The Table 2 system config with the --dpus / --ranks overrides
/// applied (0 keeps each default). Aborts if ranks does not divide the
/// DPU count.
pim::DpuSystemConfig MakePaperSystemConfig(const BenchScale& scale);

/// MakePaperSystem honoring --dpus / --ranks.
std::unique_ptr<pim::DpuSystem> MakePaperSystem(const BenchScale& scale);

/// Engine options matching the §4.1 setup.
core::EngineOptions PaperEngineOptions(partition::Method method,
                                       std::uint32_t nc,
                                       const BenchScale& scale);

/// Mines GRACE cache lists once per table so multiple engine
/// configurations can share them. Tables mine in parallel
/// (`num_threads`: 0 = default pool, 1 = serial); results are
/// thread-count invariant. `profiles` optionally supplies ProfileTables
/// output so the miner skips its own per-table profiling pass.
std::vector<cache::CacheRes> MineCaches(
    const Workload& workload, std::uint32_t num_threads = 0,
    const std::vector<trace::TableProfile>* profiles = nullptr);

/// Profiles every table once (freq histogram + descending-frequency
/// order) for EngineOptions::preprofiled, so the per-table radix sort
/// runs once per workload instead of once per engine configuration.
/// Tables profile in parallel; results are thread-count invariant.
std::vector<trace::TableProfile> ProfileTables(
    const Workload& workload, std::uint32_t num_threads = 0);

/// FAE GPU hot-cache provisioning used in comparisons.
baselines::FaeOptions PaperFaeOptions();

/// Builds the --health-out FleetMonitor for one monitored serve run:
/// window width from --health-window-us, SLO target `slo_ns`, straggler
/// rank/shard grouping from `units_per_rank` / `units_per_shard` (0 =
/// no such grouping), and a drift baseline per table mined from
/// `profiles` (ProfileTables output; computed here when nullptr).
/// Returns nullptr — monitoring off — when scale.health_out is empty
/// or telemetry is compiled out (with a stderr note, like TraceSession).
std::unique_ptr<telemetry::FleetMonitor> MakeFleetMonitor(
    const Workload& workload, const BenchScale& scale, Nanos slo_ns,
    std::uint32_t units_per_rank = 0, std::uint32_t units_per_shard = 0,
    const std::vector<trace::TableProfile>* profiles = nullptr);

/// Finalizes `monitor` and lands every health artifact: per-window
/// counters into the live trace (call this BEFORE the TraceSession
/// closes), the JSONL stream to scale.health_out (self-checked with
/// ValidateHealthJsonl — the bench aborts on a malformed stream), the
/// summary into MetricsRegistry::Global() under "health." (so it rides
/// into BENCH_metrics.json), and a one-line stderr digest. No-op when
/// `monitor` is null.
void WriteHealthArtifacts(telemetry::FleetMonitor* monitor,
                          const BenchScale& scale);

/// Merges "<name>": <payload> (payload = a JSON value) into
/// BENCH_host.json — the same file HostTimer writes — for benches that
/// produce structured measurements outside the RAII timer (e.g. the
/// micro_benchmarks SIMD throughput rows).
void WriteBenchHostEntry(const std::string& name,
                         const std::string& payload);

/// Check-mode gate: a no-op when the engine runs without
/// EngineOptions::check_mode; otherwise prints the violation report
/// (prefixed with `label`) and aborts the bench on any violation, so a
/// --check bench run doubles as a zero-violation assertion in CI.
void AssertChecksClean(const core::UpDlrmEngine& engine,
                       const std::string& label);

/// Fleet variant: gates on the fleet-level report (shard coverage,
/// tier capacity, reduction shape) plus every shard engine's own
/// report. No-op when the engine was built without check_mode.
void AssertChecksClean(const core::ShardedEngine& engine,
                       const std::string& label);

/// RAII wall-clock self-timer. On destruction, merges
///   "<name>": {"wall_seconds": <elapsed>, "threads": <width>,
///              "phases": {<phase>: <seconds>, ...}}
/// into BENCH_host.json in the working directory (one entry per bench;
/// re-runs overwrite their own entry; "phases" is omitted when
/// BeginPhase was never called). It also mirrors the measurements into
/// MetricsRegistry::Global() ("host.wall_seconds", "host.threads",
/// "host.phase.<phase>_seconds") and merges that registry's full
/// ToJson snapshot — everything the bench exported, not just host time
/// — into BENCH_metrics.json under the same entry name. This is the
/// only place host wall time is recorded — simulated results never
/// depend on it.
class HostTimer {
 public:
  HostTimer(std::string name, const BenchScale& scale);
  ~HostTimer();

  HostTimer(const HostTimer&) = delete;
  HostTimer& operator=(const HostTimer&) = delete;

  /// Closes the currently open phase (if any) and opens `name`.
  /// Repeated phases accumulate, so a bench looping over configs can
  /// alternate BeginPhase("setup") / BeginPhase("run_batches") and get
  /// the total Setup-vs-RunBatch wall-clock split. Phase attribution
  /// is per-thread wall clock: call from the bench's main thread only.
  void BeginPhase(const char* name);

 private:
  double ClosePhase();

  std::string name_;
  std::uint32_t threads_;
  std::chrono::steady_clock::time_point start_;
  /// Accumulated (phase, seconds), in first-use order.
  std::vector<std::pair<std::string, double>> phases_;
  const char* open_phase_ = nullptr;
  std::chrono::steady_clock::time_point phase_start_{};
};

/// RAII tracing scope for one bench region (the --trace-out /
/// --trace-sample-every flags). Inert when scale.trace_out is empty;
/// otherwise enables the process tracer on construction and, on
/// destruction, disables it, writes the Chrome-trace JSON to
/// scale.trace_out, validates it with the schema checker (aborting the
/// bench on a malformed or empty trace), and prints the
/// recorded/dropped/sampled-out accounting to stderr and the registry
/// ("trace.*" counters) — the drop is never silent.
class TraceSession {
 public:
  explicit TraceSession(const BenchScale& scale);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
  std::uint64_t sample_every_ = 1;
};

/// Top-k straggler rows for the engine's accumulated stage-2 work —
/// the per-run balance report behind the NU/CA claims. Each row is
/// {label, dpu, table/bin/col, kernel cycles, x mean, lookups,
/// wram hits} for a TablePrinter with kStragglerColumns headers.
inline const std::vector<std::string> kStragglerColumns = {
    "config", "dpu", "tbl/bin/col", "kernel cycles", "x mean",
    "lookups", "wram hits"};
std::vector<std::vector<std::string>> StragglerRows(
    const core::UpDlrmEngine& engine, const std::string& label,
    std::size_t k = 3);

}  // namespace updlrm::bench
