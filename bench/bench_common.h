// Shared setup for the paper-reproduction benches.
//
// Every bench regenerates one table or figure of the paper. They all
// share the experimental setup of §4.1: Meta's DLRM with 8 duplicated
// EMTs of 32-dim embeddings, batch size 64, 12,800 sampled inferences,
// and the Table 2 UPMEM system (256 DPUs @ 350 MHz, 14 tasklets).
//
// By default benches run a reduced 640-sample trace (10 batches) so
// the whole suite completes in minutes on one core; per-batch results
// are unchanged because all timing models are per-batch. Pass --full
// for the paper's 12,800 samples, or --samples=N explicitly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/systems.h"
#include "cache/grace.h"
#include "common/cli.h"
#include "dlrm/model.h"
#include "pim/system.h"
#include "trace/dataset.h"
#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::bench {

struct BenchScale {
  std::size_t num_samples = 640;
  std::size_t batch_size = 64;
};

/// Parses --samples / --full / --batch from argv; prints a scale banner.
BenchScale ParseScale(int argc, const char* const* argv);

struct Workload {
  trace::DatasetSpec spec;
  dlrm::DlrmConfig config;  // 8 tables x (num_items x 32), dense 13
  trace::Trace trace;
};

/// Generates the trace for one §4.1 workload at the given scale.
Workload PrepareWorkload(const trace::DatasetSpec& spec,
                         const BenchScale& scale);

/// The Table 2 UPMEM system: 256 DPUs, 4 ranks, paper defaults.
/// Timing-only (full-scale tables are never materialized in benches).
std::unique_ptr<pim::DpuSystem> MakePaperSystem();

/// Engine options matching the §4.1 setup.
core::EngineOptions PaperEngineOptions(partition::Method method,
                                       std::uint32_t nc,
                                       const BenchScale& scale);

/// Mines GRACE cache lists once per table so multiple engine
/// configurations can share them.
std::vector<cache::CacheRes> MineCaches(const Workload& workload);

/// FAE GPU hot-cache provisioning used in comparisons.
baselines::FaeOptions PaperFaeOptions();

}  // namespace updlrm::bench
