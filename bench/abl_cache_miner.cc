// Ablation: cache-list generators (the "any caching technique" claim).
//
// §5: "although we adopt GRACE to generate cache lists in this paper,
// UpDLRM does not rely on GRACE and can work with any other caching
// technique." This ablation swaps the generator and measures what the
// cache-aware pipeline gets out of each on GoodReads:
//   * GRACE-style co-occurrence mining (the paper's choice);
//   * frequency-rank pairing (popularity only, no co-occurrence);
//   * no caching (non-uniform partitioning).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "cache/freq_pairs.h"
#include "cache/grace.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: cache-list generator (GoodReads, CA, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);

  auto run = [&](const char* /*name*/,
                 const std::vector<cache::CacheRes>* premined,
                 partition::Method method) {
    auto system = bench::MakePaperSystem();
    core::EngineOptions options =
        bench::PaperEngineOptions(method, 8, scale);
    options.premined_cache = premined;
    auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                             system.get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
    std::size_t lists = 0;
    for (const auto& group : (*engine)->groups()) {
      lists += group.plan.cache.lists.size();
    }
    return std::make_tuple(
        report->stages.dpu_lookup /
            static_cast<double>(report->num_batches),
        report->EmbeddingTotal() /
            static_cast<double>(report->num_batches),
        lists);
  };

  // Mine both generators once per table.
  std::vector<cache::CacheRes> grace_lists;
  std::vector<cache::CacheRes> pair_lists;
  cache::GraceMiner grace;
  cache::FreqPairMiner pairs;
  for (std::uint32_t t = 0; t < w.config.num_tables; ++t) {
    auto g = grace.Mine(w.trace.tables[t], w.config.rows_per_table);
    auto p = pairs.Mine(w.trace.tables[t], w.config.rows_per_table);
    UPDLRM_CHECK(g.ok() && p.ok());
    grace_lists.push_back(std::move(g).value());
    pair_lists.push_back(std::move(p).value());
  }

  const auto [nu_lookup, nu_emb, nu_lists] =
      run("none", nullptr, partition::Method::kNonUniform);
  const auto [pair_lookup, pair_emb, pair_count] =
      run("pairs", &pair_lists, partition::Method::kCacheAware);
  const auto [grace_lookup, grace_emb, grace_count] =
      run("grace", &grace_lists, partition::Method::kCacheAware);

  TablePrinter out({"cache-list generator", "lists (8 tables)",
                    "lookup (us/batch)", "lookup cut",
                    "embedding (us/batch)"});
  out.AddRow({"none (NU)", "0", TablePrinter::FmtMicros(nu_lookup, 0),
              "-", TablePrinter::FmtMicros(nu_emb, 0)});
  out.AddRow({"frequency pairs (popularity only)",
              TablePrinter::Fmt(static_cast<std::uint64_t>(pair_count)),
              TablePrinter::FmtMicros(pair_lookup, 0),
              TablePrinter::FmtPercent(1.0 - pair_lookup / nu_lookup, 1),
              TablePrinter::FmtMicros(pair_emb, 0)});
  out.AddRow({"GRACE-style co-occurrence",
              TablePrinter::Fmt(static_cast<std::uint64_t>(grace_count)),
              TablePrinter::FmtMicros(grace_lookup, 0),
              TablePrinter::FmtPercent(1.0 - grace_lookup / nu_lookup, 1),
              TablePrinter::FmtMicros(grace_emb, 0)});
  out.Print(std::cout);
  std::printf(
      "\nany generator plugs into Algorithm 1 via CacheRes; "
      "co-occurrence awareness is what makes the partial sums hit\n");
  return 0;
}
