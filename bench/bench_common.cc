#include "bench_common.h"

#include <cstdio>

namespace updlrm::bench {

BenchScale ParseScale(int argc, const char* const* argv) {
  BenchScale scale;
  auto cl = CommandLine::Parse(argc, argv);
  if (cl.ok()) {
    if (cl->GetBool("full", false)) {
      scale.num_samples = 12'800;  // the paper's sampling
    }
    scale.num_samples = static_cast<std::size_t>(
        cl->GetInt("samples", static_cast<std::int64_t>(scale.num_samples)));
    scale.batch_size = static_cast<std::size_t>(
        cl->GetInt("batch", static_cast<std::int64_t>(scale.batch_size)));
  }
  std::printf("# setup: %zu sampled inferences, batch size %zu "
              "(paper: 12800 / 64; pass --full for paper scale)\n\n",
              scale.num_samples, scale.batch_size);
  return scale;
}

Workload PrepareWorkload(const trace::DatasetSpec& spec,
                         const BenchScale& scale) {
  Workload w;
  w.spec = spec;
  w.config.num_tables = 8;  // §4.1: each dataset duplicated into 8 EMTs
  w.config.rows_per_table = spec.num_items;
  w.config.embedding_dim = 32;
  w.config.dense_features = 13;
  trace::TraceGeneratorOptions options;
  options.num_samples = scale.num_samples;
  options.num_tables = 8;
  auto trace = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());
  w.trace = std::move(trace).value();
  return w;
}

std::unique_ptr<pim::DpuSystem> MakePaperSystem() {
  pim::DpuSystemConfig config;  // defaults are the Table 2 system
  config.functional = false;
  auto system = pim::DpuSystem::Create(config);
  UPDLRM_CHECK_MSG(system.ok(), system.status().ToString());
  return std::move(system).value();
}

core::EngineOptions PaperEngineOptions(partition::Method method,
                                       std::uint32_t nc,
                                       const BenchScale& scale) {
  core::EngineOptions options;
  options.method = method;
  options.nc = nc;
  options.batch_size = scale.batch_size;
  return options;
}

std::vector<cache::CacheRes> MineCaches(const Workload& workload) {
  std::vector<cache::CacheRes> caches;
  caches.reserve(workload.config.num_tables);
  cache::GraceMiner miner;
  for (std::uint32_t t = 0; t < workload.config.num_tables; ++t) {
    auto res = miner.Mine(workload.trace.tables[t],
                          workload.config.rows_per_table);
    UPDLRM_CHECK_MSG(res.ok(), res.status().ToString());
    caches.push_back(std::move(res).value());
  }
  return caches;
}

baselines::FaeOptions PaperFaeOptions() {
  return baselines::FaeOptions{};  // 64 MB hot cache (see systems.h)
}

}  // namespace updlrm::bench
