#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/simd.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "pim/stats_summary.h"
#include "telemetry/trace_export.h"
#include "telemetry/tracer.h"
#include "updlrm/scaleout.h"

namespace updlrm::bench {

BenchScale ParseScale(int argc, const char* const* argv) {
  BenchScale scale;
  auto cl = CommandLine::Parse(argc, argv);
  if (cl.ok()) {
    if (cl->GetBool("full", false)) {
      scale.num_samples = 12'800;  // the paper's sampling
    }
    scale.num_samples = static_cast<std::size_t>(
        cl->GetInt("samples", static_cast<std::int64_t>(scale.num_samples)));
    scale.batch_size = static_cast<std::size_t>(
        cl->GetInt("batch", static_cast<std::int64_t>(scale.batch_size)));
    scale.threads =
        static_cast<std::uint32_t>(cl->GetInt("threads", 0));
    scale.seed = static_cast<std::uint64_t>(cl->GetInt("seed", 0));
    scale.arrival = cl->GetString("arrival", scale.arrival);
    scale.dedup = cl->GetBool("dedup", false);
    scale.wram = static_cast<std::uint32_t>(cl->GetInt("wram", 0));
    scale.coalesce = cl->GetBool("coalesce", false);
    scale.check = cl->GetBool("check", false);
    scale.e2e = cl->GetBool("e2e", false);
    if (cl->GetBool("force-scalar", false)) {
      simd::ForceScalar(true);
    }
    scale.trace_out = cl->GetString("trace-out", "");
    scale.trace_sample_every = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, cl->GetInt("trace-sample-every", 1)));
    scale.dpus = static_cast<std::uint32_t>(cl->GetInt("dpus", 0));
    scale.ranks = static_cast<std::uint32_t>(cl->GetInt("ranks", 0));
    scale.health_out = cl->GetString("health-out", "");
    scale.health_window_us = static_cast<double>(std::max<std::int64_t>(
        1, cl->GetInt("health-window-us",
                      static_cast<std::int64_t>(scale.health_window_us))));
  }
  if (scale.threads > 0) {
    // Cap the process-wide pool so num_threads = 0 regions also honor
    // the flag. Must happen before anything touches the default pool.
    ThreadPool::SetDefaultThreads(scale.threads);
  }
  const unsigned effective =
      scale.threads > 0 ? scale.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  std::printf("# setup: %zu sampled inferences, batch size %zu, "
              "%u host thread(s), %s kernels "
              "(paper: 12800 / 64; pass --full for paper scale, "
              "--threads=N for host parallelism, --force-scalar to "
              "disable AVX2)\n\n",
              scale.num_samples, scale.batch_size, effective,
              simd::UsingAvx2() ? "avx2" : "scalar");
  return scale;
}

Workload PrepareWorkload(const trace::DatasetSpec& spec,
                         const BenchScale& scale) {
  Workload w;
  w.spec = spec;
  w.config.num_tables = 8;  // §4.1: each dataset duplicated into 8 EMTs
  w.config.rows_per_table = spec.num_items;
  w.config.embedding_dim = 32;
  w.config.dense_features = 13;
  trace::TraceGeneratorOptions options;
  options.num_samples = scale.num_samples;
  options.num_tables = 8;
  options.num_threads = scale.threads;
  options.seed_override = scale.seed;  // 0 keeps the spec's base seed
  auto trace = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());
  w.trace = std::move(trace).value();
  return w;
}

std::unique_ptr<pim::DpuSystem> MakePaperSystem() {
  pim::DpuSystemConfig config;  // defaults are the Table 2 system
  config.functional = false;
  auto system = pim::DpuSystem::Create(config);
  UPDLRM_CHECK_MSG(system.ok(), system.status().ToString());
  return std::move(system).value();
}

pim::DpuSystemConfig MakePaperSystemConfig(const BenchScale& scale) {
  pim::DpuSystemConfig config;  // defaults are the Table 2 system
  config.functional = false;
  if (scale.dpus > 0) config.num_dpus = scale.dpus;
  if (scale.ranks > 0) {
    UPDLRM_CHECK_MSG(config.num_dpus % scale.ranks == 0,
                     "--ranks must divide the DPU count");
    config.dpus_per_rank = config.num_dpus / scale.ranks;
  } else if (config.num_dpus < config.dpus_per_rank) {
    config.dpus_per_rank = config.num_dpus;  // small --dpus: one rank
  }
  return config;
}

std::unique_ptr<pim::DpuSystem> MakePaperSystem(const BenchScale& scale) {
  auto system = pim::DpuSystem::Create(MakePaperSystemConfig(scale));
  UPDLRM_CHECK_MSG(system.ok(), system.status().ToString());
  return std::move(system).value();
}

core::EngineOptions PaperEngineOptions(partition::Method method,
                                       std::uint32_t nc,
                                       const BenchScale& scale) {
  core::EngineOptions options;
  options.method = method;
  options.nc = nc;
  options.batch_size = scale.batch_size;
  options.num_threads = scale.threads;
  options.grace.num_threads = scale.threads;
  options.dedup = scale.dedup;
  options.wram_cache_rows = scale.wram;
  options.coalesce_transfers = scale.coalesce;
  options.check_mode = scale.check;
  return options;
}

void AssertChecksClean(const core::UpDlrmEngine& engine,
                       const std::string& label) {
  const check::CheckReport* report = engine.check_report();
  if (report == nullptr) return;  // checks off: nothing to gate on
  if (report->clean()) {
    std::printf("# check[%s]: clean (0 violations)\n", label.c_str());
    return;
  }
  std::printf("# check[%s]: %s", label.c_str(),
              report->ToString().c_str());
  UPDLRM_CHECK_MSG(false, "hardware-contract checker reported " +
                              std::to_string(report->total()) +
                              " violation(s) in " + label);
}

void AssertChecksClean(const core::ShardedEngine& engine,
                       const std::string& label) {
  if (engine.num_shards() == 0 ||
      engine.shard(0).check_report() == nullptr) {
    return;  // checks off: nothing to gate on
  }
  const std::uint64_t total = engine.check_violations();
  if (total == 0) {
    std::printf("# check[%s]: clean (0 violations across %u shard(s) "
                "and the fleet audits)\n",
                label.c_str(), engine.num_shards());
    return;
  }
  std::printf("# check[%s] fleet: %s", label.c_str(),
              engine.fleet_check_report().ToString().c_str());
  for (std::uint32_t s = 0; s < engine.num_shards(); ++s) {
    const check::CheckReport* shard = engine.shard(s).check_report();
    if (shard != nullptr && !shard->clean()) {
      std::printf("# check[%s] shard %u: %s", label.c_str(), s,
                  shard->ToString().c_str());
    }
  }
  UPDLRM_CHECK_MSG(false, "fleet checker reported " +
                              std::to_string(total) + " violation(s) in " +
                              label);
}

std::vector<cache::CacheRes> MineCaches(
    const Workload& workload, std::uint32_t num_threads,
    const std::vector<trace::TableProfile>* profiles) {
  // Per-table mining is independent; each task fills its own slot, so
  // the mined lists are identical at any thread count.
  const std::uint32_t tables = workload.config.num_tables;
  UPDLRM_CHECK_MSG(profiles == nullptr || profiles->size() == tables,
                   "profiles must hold one TableProfile per table");
  std::vector<cache::CacheRes> caches(tables);
  std::vector<Status> statuses(tables);
  ParallelFor(
      tables,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          cache::GraceMiner miner;
          auto res = miner.Mine(
              workload.trace.tables[t], workload.config.rows_per_table,
              profiles != nullptr ? &(*profiles)[t] : nullptr);
          if (!res.ok()) {
            statuses[t] = res.status();
            continue;
          }
          caches[t] = std::move(res).value();
        }
      },
      num_threads);
  for (const Status& status : statuses) {
    UPDLRM_CHECK_MSG(status.ok(), status.ToString());
  }
  return caches;
}

std::vector<trace::TableProfile> ProfileTables(const Workload& workload,
                                               std::uint32_t num_threads) {
  // Per-table profiling is independent; each task fills its own slot,
  // so the profiles are identical at any thread count.
  const std::uint32_t tables = workload.config.num_tables;
  std::vector<trace::TableProfile> profiles(tables);
  ParallelFor(
      tables,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          profiles[t] = trace::ProfileTable(workload.trace.tables[t],
                                            workload.config.rows_per_table);
        }
      },
      num_threads);
  return profiles;
}

baselines::FaeOptions PaperFaeOptions() {
  return baselines::FaeOptions{};  // 64 MB hot cache (see systems.h)
}

std::unique_ptr<telemetry::FleetMonitor> MakeFleetMonitor(
    const Workload& workload, const BenchScale& scale, Nanos slo_ns,
    std::uint32_t units_per_rank, std::uint32_t units_per_shard,
    const std::vector<trace::TableProfile>* profiles) {
  if (scale.health_out.empty()) return nullptr;
#ifdef UPDLRM_TELEMETRY_DISABLED
  std::fprintf(stderr,
               "# health: telemetry compiled out (-DUPDLRM_TELEMETRY=OFF); "
               "--health-out ignored\n");
  return nullptr;
#else
  telemetry::MonitorOptions options;
  options.window_ns = scale.health_window_us * 1e3;
  options.slo.slo_ns = slo_ns;
  options.health.units_per_rank = units_per_rank;
  options.health.units_per_shard = units_per_shard;
  auto monitor = std::make_unique<telemetry::FleetMonitor>(options);

  std::vector<trace::TableProfile> own;
  if (profiles == nullptr) {
    own = ProfileTables(workload, scale.threads);
    profiles = &own;
  }
  UPDLRM_CHECK_MSG(profiles->size() == workload.config.num_tables,
                   "profiles must hold one TableProfile per table");
  for (std::uint32_t t = 0; t < workload.config.num_tables; ++t) {
    monitor->AddTableBaseline(
        t, telemetry::BuildDriftBaseline((*profiles)[t].freq,
                                         (*profiles)[t].by_freq,
                                         options.drift));
  }
  return monitor;
#endif
}

void WriteHealthArtifacts(telemetry::FleetMonitor* monitor,
                          const BenchScale& scale) {
  if (monitor == nullptr) return;
  monitor->Finalize();
  // Counter events must land before the TraceSession snapshots the
  // buffer — callers sequence this before the session destructor runs.
  monitor->EmitTraceCounters();

  const Status written = monitor->WriteJsonl(scale.health_out);
  UPDLRM_CHECK_MSG(written.ok(), written.ToString());
  const std::string jsonl = monitor->ToJsonl();
  const Status valid = telemetry::ValidateHealthJsonl(jsonl, 1);
  UPDLRM_CHECK_MSG(valid.ok(), valid.ToString());

  monitor->ExportTo(telemetry::MetricsRegistry::Global(), "health");

  const telemetry::HealthSummary& summary = monitor->summary();
  std::fprintf(
      stderr,
      "# health: %llu window(s) -> %s (drift: %llu bad table-window(s), "
      "first alert window %lld, %llu table(s) alerting; slo: %llu "
      "alert window(s), max burn %.2f/%.2f; stragglers: %llu "
      "window(s), max |z| %.2f)\n",
      static_cast<unsigned long long>(summary.windows),
      scale.health_out.c_str(),
      static_cast<unsigned long long>(summary.drift_bad_table_windows),
      static_cast<long long>(summary.first_drift_alert_window),
      static_cast<unsigned long long>(summary.drift_tables_alerting),
      static_cast<unsigned long long>(summary.slo_alert_windows),
      summary.max_fast_burn, summary.max_slow_burn,
      static_cast<unsigned long long>(summary.straggler_windows),
      summary.max_unit_z);
}

namespace {

// Merge one "<name>": <payload> entry into a one-entry-per-line JSON
// object file: keep every line that belongs to another bench, replace
// (or append) our own. The files are our own output format, so a line
// parser is sufficient.
void MergeJsonEntry(const char* path, const std::string& name,
                    const std::string& payload) {
  std::vector<std::string> entries;
  {
    std::ifstream in(path);
    std::string line;
    const std::string me = "\"" + name + "\":";
    while (std::getline(in, line)) {
      const auto key = line.find('"');
      if (key == std::string::npos) continue;  // braces / blank lines
      if (line.compare(key, me.size(), me) == 0) continue;  // replaced
      if (!line.empty() && line.back() == ',') line.pop_back();
      entries.push_back(line);
    }
  }
  entries.push_back("  \"" + name + "\": " + payload);

  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << entries[i] << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "}\n";
}

}  // namespace

void WriteBenchHostEntry(const std::string& name,
                         const std::string& payload) {
  MergeJsonEntry("BENCH_host.json", name, payload);
}

HostTimer::HostTimer(std::string name, const BenchScale& scale)
    : name_(std::move(name)),
      threads_(scale.threads),
      start_(std::chrono::steady_clock::now()) {}

void HostTimer::BeginPhase(const char* name) {
  ClosePhase();
  open_phase_ = name;
  phase_start_ = std::chrono::steady_clock::now();
}

double HostTimer::ClosePhase() {
  if (open_phase_ == nullptr) return 0.0;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    phase_start_)
          .count();
  const std::string name = open_phase_;
  open_phase_ = nullptr;
  for (auto& [phase, total] : phases_) {
    if (phase == name) {
      total += seconds;
      return seconds;
    }
  }
  phases_.emplace_back(name, seconds);
  return seconds;
}

HostTimer::~HostTimer() {
  ClosePhase();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  const unsigned effective =
      threads_ > 0 ? threads_
                   : std::max(1u, std::thread::hardware_concurrency());

  std::ostringstream mine;
  mine << "{\"wall_seconds\": " << seconds << ", \"threads\": "
       << effective;
  if (!phases_.empty()) {
    mine << ", \"phases\": {";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      mine << (i > 0 ? ", " : "") << "\"" << phases_[i].first
           << "\": " << phases_[i].second;
    }
    mine << "}";
  }
  mine << "}";
  MergeJsonEntry("BENCH_host.json", name_, mine.str());

  // Mirror into the unified registry, then snapshot everything the
  // bench exported (serve scorecards, DPU stats, trace accounting,
  // ...) into BENCH_metrics.json under the same entry name.
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry.SetGauge("host.wall_seconds", seconds);
  registry.SetGauge("host.threads", static_cast<double>(effective));
  for (const auto& [phase, total] : phases_) {
    registry.SetGauge("host.phase." + phase + "_seconds", total);
  }
  MergeJsonEntry("BENCH_metrics.json", name_, registry.ToJson());

  std::printf("\n# host wall clock: %.3f s at %u thread(s)", seconds,
              effective);
  for (const auto& [phase, total] : phases_) {
    std::printf(" [%s %.3f s]", phase.c_str(), total);
  }
  std::printf(" -> BENCH_host.json, BENCH_metrics.json\n");
}

TraceSession::TraceSession(const BenchScale& scale)
    : path_(scale.trace_out), sample_every_(scale.trace_sample_every) {
#ifdef UPDLRM_TELEMETRY_DISABLED
  if (!path_.empty()) {
    std::fprintf(stderr,
                 "# trace: telemetry compiled out (-DUPDLRM_TELEMETRY=OFF); "
                 "--trace-out ignored\n");
    path_.clear();
  }
#else
  if (path_.empty()) return;
  telemetry::TracerOptions options;
  options.sample_every = sample_every_;
  telemetry::Tracer::Get().Enable(options);
#endif
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  tracer.Disable();
  const Status written = telemetry::WriteChromeTrace(tracer, path_);
  UPDLRM_CHECK_MSG(written.ok(), written.ToString());
  const Status valid = telemetry::ValidateChromeTraceFile(path_);
  UPDLRM_CHECK_MSG(valid.ok(), valid.ToString());

  const std::uint64_t recorded = tracer.recorded_events();
  const std::uint64_t dropped = tracer.dropped_events();
  const std::uint64_t sampled_out = tracer.sampled_out_events();
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry.Increment("trace.recorded_events",
                     static_cast<double>(recorded));
  registry.Increment("trace.dropped_events", static_cast<double>(dropped));
  registry.Increment("trace.sampled_out_spans",
                     static_cast<double>(sampled_out));
  std::fprintf(stderr,
               "# trace: %llu events -> %s (%llu dropped by full buffers, "
               "%llu spans sampled out by --trace-sample-every=%llu)\n",
               static_cast<unsigned long long>(recorded), path_.c_str(),
               static_cast<unsigned long long>(dropped),
               static_cast<unsigned long long>(sampled_out),
               static_cast<unsigned long long>(sample_every_));
}

std::vector<std::vector<std::string>> StragglerRows(
    const core::UpDlrmEngine& engine, const std::string& label,
    std::size_t k) {
  const pim::DpuSystem& system = engine.dpu_system();
  const pim::DpuStatsSummary summary = pim::SummarizeStats(system);
  const double mean = static_cast<double>(summary.mean_kernel_cycles);
  std::vector<std::vector<std::string>> rows;
  for (const pim::DpuHotspot& h : pim::TopKSlowestDpus(system, k)) {
    const auto loc = engine.LocateDpu(h.dpu);
    const std::string where =
        loc ? std::to_string(loc->table) + "/" + std::to_string(loc->bin) +
                  "/" + std::to_string(loc->col)
            : "-";
    rows.push_back(
        {label, std::to_string(h.dpu), where,
         std::to_string(h.kernel_cycles),
         TablePrinter::Fmt(
             mean == 0.0 ? 0.0
                         : static_cast<double>(h.kernel_cycles) / mean,
             2),
         std::to_string(h.lookups), std::to_string(h.wram_hits)});
  }
  return rows;
}

}  // namespace updlrm::bench
