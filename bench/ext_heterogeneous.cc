// Extension: heterogeneous tables and DPU allocation policies.
//
// The paper's evaluation duplicates one dataset into 8 identical EMTs
// and splits the 256 DPUs evenly. Production DLRMs mix table sizes and
// pooling factors by orders of magnitude; this bench builds such a
// model (the six Table-1 datasets plus the two trace-study catalogs as
// eight *distinct* tables) and compares DPU allocation policies: the
// paper's even split vs rows- and traffic-proportional groups.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "pim/stats_summary.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Extension: heterogeneous tables x DPU allocation policy "
      "==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  // Eight genuinely different tables.
  std::vector<trace::DatasetSpec> specs(trace::Table1Workloads().begin(),
                                        trace::Table1Workloads().end());
  auto movie = trace::FindDataset("movie");
  auto twitch = trace::FindDataset("twitch");
  UPDLRM_CHECK(movie.ok() && twitch.ok());
  specs.push_back(*movie);
  specs.push_back(*twitch);

  dlrm::DlrmConfig config;
  config.num_tables = static_cast<std::uint32_t>(specs.size());
  config.embedding_dim = 32;
  config.dense_features = 13;
  for (const auto& spec : specs) {
    config.table_rows.push_back(spec.num_items);
  }

  trace::TraceGeneratorOptions options;
  options.num_samples = scale.num_samples;
  auto trace = trace::GenerateHeterogeneousTrace(specs, options);
  UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());

  std::printf("tables: ");
  for (std::uint32_t t = 0; t < config.num_tables; ++t) {
    std::printf("%s(%.1fM rows, red %.0f) ", specs[t].name.c_str(),
                static_cast<double>(specs[t].num_items) / 1e6,
                trace->tables[t].MeasuredAvgReduction());
  }
  std::printf("\n\n");

  struct Policy {
    const char* name;
    partition::DpuAllocationPolicy policy;
  };
  const Policy policies[] = {
      {"equal (paper setup)", partition::DpuAllocationPolicy::kEqual},
      {"proportional to rows",
       partition::DpuAllocationPolicy::kProportionalRows},
      {"proportional to traffic",
       partition::DpuAllocationPolicy::kProportionalTraffic},
  };

  TablePrinter out({"allocation policy", "Nc*", "largest group",
                    "smallest group", "stage2 (us/batch)",
                    "stage2 imbalance", "embedding (us/batch)"});
  double equal_emb = 0.0;
  for (const Policy& policy : policies) {
    auto system = bench::MakePaperSystem();
    core::EngineOptions engine_options = bench::PaperEngineOptions(
        partition::Method::kNonUniform, 0, scale);
    engine_options.allocation = policy.policy;
    auto engine = core::UpDlrmEngine::Create(nullptr, config, *trace,
                                             system.get(), engine_options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());

    std::uint32_t largest = 0;
    std::uint32_t smallest = ~0u;
    for (const auto& group : (*engine)->groups()) {
      largest = std::max(largest, group.plan.geom.dpus_per_table);
      smallest = std::min(smallest, group.plan.geom.dpus_per_table);
    }
    const auto batches = static_cast<double>(report->num_batches);
    const auto summary = pim::SummarizeStats(*system);
    const double emb = report->EmbeddingTotal() / batches;
    if (policy.policy == partition::DpuAllocationPolicy::kEqual) {
      equal_emb = emb;
    }
    out.AddRow({policy.name, std::to_string((*engine)->nc()),
                std::to_string(largest) + " DPUs",
                std::to_string(smallest) + " DPUs",
                TablePrinter::FmtMicros(
                    report->stages.dpu_lookup / batches, 0),
                TablePrinter::Fmt(summary.cycle_imbalance, 2),
                TablePrinter::FmtMicros(emb, 0) + " (" +
                    TablePrinter::FmtSpeedup(equal_emb / emb) + ")"});
  }
  out.Print(std::cout);
  std::printf(
      "\nwith mixed tables the even split leaves the hottest table's "
      "group as the stage-2 straggler; traffic-proportional groups "
      "equalize per-DPU work across tables\n");
  return 0;
}
