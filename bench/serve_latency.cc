// Online serving: tail latency and sustainable throughput per
// partitioning method under an open-loop arrival stream.
//
// The offline benches replay the trace back-to-back; this one drives
// the engine through the serving subsystem (request queue -> dynamic
// batcher -> double-buffered pipelined executor) at swept offered
// loads. Per method the bench first calibrates the pipeline's capacity
// (batch_size / bottleneck-resource time per batch), then sweeps
// offered load at {0.5, 0.8, 1.0, 1.2}x capacity and reports the
// latency distribution, shed count and whether a 3x-batch-time p99 SLO
// holds; the highest load that holds it is the max sustainable QPS.
//
// Emits BENCH_serve.json (one row per method x offered rate). All
// results are simulated time: bit-exact at any --threads width.
// Flags: --arrival=poisson|uniform|bursty, --seed=N (trace seed
// override), plus the usual --samples/--batch/--threads.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Online serving: tail latency and sustainable QPS per "
      "partitioning method ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  bench::HostTimer timer("serve_latency", scale);

  auto arrival = serve::ParseArrivalProcess(scale.arrival);
  UPDLRM_CHECK_MSG(arrival.ok(), arrival.status().ToString());

  timer.BeginPhase("setup");
  const auto& spec = trace::Table1Workloads()[0];  // clo
  const bench::Workload w = bench::PrepareWorkload(spec, scale);
  const double load_factors[] = {0.5, 0.8, 1.0, 1.2, 1.5, 2.0};

  TablePrinter out({"method", "load", "offered qps", "p50 (us)",
                    "p99 (us)", "shed", "slo met"});
  std::ostringstream rows;
  std::ostringstream sustainable;
  bool first_row = true;
  // One workload-level p99 SLO for every method, so sustainable-QPS
  // numbers are comparable: 3x the uniform baseline's average serial
  // batch embedding time (uniform runs first below).
  Nanos slo_ns = 0.0;

  for (const partition::Method method :
       {partition::Method::kUniform, partition::Method::kNonUniform,
        partition::Method::kCacheAware}) {
    timer.BeginPhase("setup");
    auto system = bench::MakePaperSystem();
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system.get(),
        bench::PaperEngineOptions(method, 0, scale));
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());

    // Calibrate: one offline pass gives the per-batch stage profile.
    timer.BeginPhase("calibrate");
    auto profile = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(profile.ok(), profile.status().ToString());
    const double nb = static_cast<double>(profile->num_batches);
    const Nanos host_per_batch = (profile->stages.cpu_to_dpu +
                                  profile->stages.dpu_to_cpu +
                                  profile->stages.cpu_aggregate) /
                                 nb;
    const Nanos dpu_per_batch = profile->stages.dpu_lookup / nb;
    const Nanos batch_total =
        profile->stages.EmbeddingTotal() / nb;
    // Pipelined capacity: the slower resource turns over one batch per
    // max(host, dpu) ns in steady state.
    const double capacity_qps =
        static_cast<double>(scale.batch_size) /
        (std::max(host_per_batch, dpu_per_batch) / kNanosPerSecond);
    if (slo_ns == 0.0) slo_ns = 3.0 * batch_total;

    timer.BeginPhase("serve");
    std::vector<serve::RatePoint> points;
    for (const double load : load_factors) {
      const double qps = load * capacity_qps;
      serve::ArrivalOptions arrivals;
      arrivals.process = *arrival;
      arrivals.qps = qps;
      arrivals.seed = scale.seed + 1;  // deterministic, thread-free
      auto requests = serve::GenerateRequests(w.trace, 0, arrivals);
      UPDLRM_CHECK_MSG(requests.ok(), requests.status().ToString());

      serve::ServeOptions options;
      options.batcher.max_batch_size = scale.batch_size;
      options.batcher.max_queue_delay_ns = batch_total;
      options.batcher.queue_capacity = 4 * scale.batch_size;
      options.batcher.policy = serve::AdmissionPolicy::kShed;
      // --trace-out captures one representative serve run (cache-aware
      // at 1.0x capacity): each run restarts the simulated clock at 0,
      // so one trace file holds exactly one run.
      std::optional<bench::TraceSession> trace_session;
      if (method == partition::Method::kCacheAware && load == 1.0) {
        trace_session.emplace(scale);
      }
      auto result =
          serve::RunServeSimulation(**engine, *requests, options);
      UPDLRM_CHECK_MSG(result.ok(), result.status().ToString());
      trace_session.reset();  // write + validate the trace, if tracing

      const std::string method_name(partition::MethodShortName(method));
      result->ExportTo(telemetry::MetricsRegistry::Global(),
                       "serve." + method_name + ".load" +
                           TablePrinter::Fmt(load, 1));

      const serve::SloReport report = result->MakeSloReport(qps, slo_ns);
      points.push_back(
          serve::RatePoint{qps, report.p99_ns, report.shed});
      out.AddRow({std::string(partition::MethodShortName(method)),
                  TablePrinter::Fmt(load, 1),
                  TablePrinter::Fmt(qps, 0),
                  TablePrinter::Fmt(NanosToMicros(report.p50_ns), 1),
                  TablePrinter::Fmt(NanosToMicros(report.p99_ns), 1),
                  std::to_string(report.shed),
                  report.slo_met ? "yes" : "NO"});
      if (!first_row) rows << ",\n";
      first_row = false;
      const std::string json = report.ToJson();
      rows << "    {\"method\": \""
           << partition::MethodShortName(method)
           << "\", \"load\": " << load << ", " << json.substr(1);
    }
    // The serve executor drove every load sweep through this engine's
    // RunSamples, so one gate covers the whole method.
    bench::AssertChecksClean(
        **engine, std::string(partition::MethodShortName(method)));
    if (sustainable.tellp() > 0) sustainable << ", ";
    sustainable << "\"" << partition::MethodShortName(method)
                << "\": " << serve::MaxSustainableQps(points, slo_ns);
  }
  out.Print(std::cout);

  std::ofstream json("BENCH_serve.json", std::ios::trunc);
  json << "{\n  \"workload\": \"" << spec.name
       << "\",\n  \"arrival\": \"" << scale.arrival
       << "\",\n  \"batch_size\": " << scale.batch_size
       << ",\n  \"slo_us\": " << NanosToMicros(slo_ns)
       << ",\n  \"rows\": [\n"
       << rows.str() << "\n  ],\n  \"max_sustainable_qps\": {"
       << sustainable.str() << "}\n}\n";
  std::printf(
      "\nSLO = 3x the uniform baseline's average serial batch "
      "embedding time (one SLO for all methods); max sustainable QPS "
      "= highest swept load with p99 <= SLO and nothing shed -> "
      "BENCH_serve.json\n");
  return 0;
}
