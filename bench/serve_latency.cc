// Online serving: tail latency and sustainable throughput per
// partitioning method under an open-loop arrival stream.
//
// The offline benches replay the trace back-to-back; this one drives
// the engine through the serving subsystem (request queue -> dynamic
// batcher -> double-buffered pipelined executor) at swept offered
// loads. Per method the bench first calibrates the pipeline's capacity
// (batch_size / bottleneck-resource time per batch), then sweeps
// offered load at {0.5, 0.8, 1.0, 1.2}x capacity and reports the
// latency distribution, shed count and whether a 3x-batch-time p99 SLO
// holds; the highest load that holds it is the max sustainable QPS.
//
// A second section serves the complete DLRM request path (bottom MLP
// overlapped with the DPU embedding stages, then interaction + top
// MLP) through src/pipeline: the data-flow auto-tuner picks the batch
// depth / bottom-split / backend placement, and the same load sweep
// reports full-path tail latency as rows tagged "path": "e2e".
// Pass --e2e to run only that section (the CI smoke configuration; it
// is also the mode in which --trace-out captures the e2e spans).
//
// Emits BENCH_serve.json (one row per method x offered rate). All
// results are simulated time: bit-exact at any --threads width.
// Flags: --arrival=poisson|uniform|bursty, --seed=N (trace seed
// override), plus the usual --samples/--batch/--threads.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "pipeline/runner.h"
#include "pipeline/tuner.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Online serving: tail latency and sustainable QPS per "
      "partitioning method ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  bench::HostTimer timer("serve_latency", scale);

  auto arrival = serve::ParseArrivalProcess(scale.arrival);
  UPDLRM_CHECK_MSG(arrival.ok(), arrival.status().ToString());

  timer.BeginPhase("setup");
  const auto& spec = trace::Table1Workloads()[0];  // clo
  const bench::Workload w = bench::PrepareWorkload(spec, scale);
  const double load_factors[] = {0.5, 0.8, 1.0, 1.2, 1.5, 2.0};

  TablePrinter out({"method", "load", "offered qps", "p50 (us)",
                    "p99 (us)", "shed", "slo met"});
  std::ostringstream rows;
  std::ostringstream sustainable;
  bool first_row = true;
  // One workload-level p99 SLO for every method, so sustainable-QPS
  // numbers are comparable: 3x the uniform baseline's average serial
  // batch embedding time (uniform runs first below).
  Nanos slo_ns = 0.0;

  if (!scale.e2e) {
    for (const partition::Method method :
         {partition::Method::kUniform, partition::Method::kNonUniform,
          partition::Method::kCacheAware}) {
      timer.BeginPhase("setup");
      auto system = bench::MakePaperSystem();
      auto engine = core::UpDlrmEngine::Create(
          nullptr, w.config, w.trace, system.get(),
          bench::PaperEngineOptions(method, 0, scale));
      UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());

      // Calibrate: one offline pass gives the per-batch stage profile.
      timer.BeginPhase("calibrate");
      auto profile = (*engine)->RunAll(nullptr);
      UPDLRM_CHECK_MSG(profile.ok(), profile.status().ToString());
      const double nb = static_cast<double>(profile->num_batches);
      const Nanos host_per_batch = (profile->stages.cpu_to_dpu +
                                    profile->stages.dpu_to_cpu +
                                    profile->stages.cpu_aggregate) /
                                   nb;
      const Nanos dpu_per_batch = profile->stages.dpu_lookup / nb;
      const Nanos batch_total =
          profile->stages.EmbeddingTotal() / nb;
      // Pipelined capacity: the slower resource turns over one batch per
      // max(host, dpu) ns in steady state.
      const double capacity_qps =
          static_cast<double>(scale.batch_size) /
          (std::max(host_per_batch, dpu_per_batch) / kNanosPerSecond);
      if (slo_ns == 0.0) slo_ns = 3.0 * batch_total;

      timer.BeginPhase("serve");
      std::vector<serve::RatePoint> points;
      for (const double load : load_factors) {
        const double qps = load * capacity_qps;
        serve::ArrivalOptions arrivals;
        arrivals.process = *arrival;
        arrivals.qps = qps;
        arrivals.seed = scale.seed + 1;  // deterministic, thread-free
        auto requests = serve::GenerateRequests(w.trace, 0, arrivals);
        UPDLRM_CHECK_MSG(requests.ok(), requests.status().ToString());

        serve::ServeOptions options;
        options.batcher.max_batch_size = scale.batch_size;
        options.batcher.max_queue_delay_ns = batch_total;
        options.batcher.queue_capacity = 4 * scale.batch_size;
        options.batcher.policy = serve::AdmissionPolicy::kShed;
        // --trace-out / --health-out capture one representative serve
        // run (cache-aware at 1.0x capacity): each run restarts the
        // simulated clock at 0, so one trace file holds exactly one run.
        std::optional<bench::TraceSession> trace_session;
        std::unique_ptr<telemetry::FleetMonitor> monitor;
        if (method == partition::Method::kCacheAware && load == 1.0) {
          trace_session.emplace(scale);
          monitor = bench::MakeFleetMonitor(
              w, scale, slo_ns, pim::DpuSystemConfig{}.dpus_per_rank);
          options.monitor = monitor.get();
        }
        auto result =
            serve::RunServeSimulation(**engine, *requests, options);
        UPDLRM_CHECK_MSG(result.ok(), result.status().ToString());
        // Health first so its counters land inside the open trace.
        bench::WriteHealthArtifacts(monitor.get(), scale);
        trace_session.reset();  // write + validate the trace, if tracing

        const std::string method_name(partition::MethodShortName(method));
        result->ExportTo(telemetry::MetricsRegistry::Global(),
                         "serve." + method_name + ".load" +
                             TablePrinter::Fmt(load, 1));

        const serve::SloReport report = result->MakeSloReport(qps, slo_ns);
        points.push_back(
            serve::RatePoint{qps, report.p99_ns, report.shed});
        out.AddRow({std::string(partition::MethodShortName(method)),
                    TablePrinter::Fmt(load, 1),
                    TablePrinter::Fmt(qps, 0),
                    TablePrinter::Fmt(NanosToMicros(report.p50_ns), 1),
                    TablePrinter::Fmt(NanosToMicros(report.p99_ns), 1),
                    std::to_string(report.shed),
                    report.slo_met ? "yes" : "NO"});
        if (!first_row) rows << ",\n";
        first_row = false;
        const std::string json = report.ToJson();
        rows << "    {\"method\": \""
             << partition::MethodShortName(method)
             << "\", \"load\": " << load << ", " << json.substr(1);
      }
      // The serve executor drove every load sweep through this engine's
      // RunSamples, so one gate covers the whole method.
      bench::AssertChecksClean(
          **engine, std::string(partition::MethodShortName(method)));
      if (sustainable.tellp() > 0) sustainable << ", ";
      sustainable << "\"" << partition::MethodShortName(method)
                  << "\": " << serve::MaxSustainableQps(points, slo_ns);
    }
  }

  // --- End-to-end pipeline: tuned data flow over the full DLRM path.
  // The embedding rows above stop at the stage-3 pull; these rows
  // include the host/GPU dense stages, with the bottom MLP overlapped
  // against the in-flight embedding batch per the tuner's chosen plan.
  {
    timer.BeginPhase("e2e_setup");
    auto system = bench::MakePaperSystem();
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, system.get(),
        bench::PaperEngineOptions(partition::Method::kCacheAware, 0,
                                  scale));
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());

    timer.BeginPhase("e2e_calibrate");
    auto profile = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(profile.ok(), profile.status().ToString());
    const double nb = static_cast<double>(profile->num_batches);
    const Nanos host_per_batch = (profile->stages.cpu_to_dpu +
                                  profile->stages.dpu_to_cpu +
                                  profile->stages.cpu_aggregate) /
                                 nb;
    const Nanos dpu_per_batch = profile->stages.dpu_lookup / nb;
    const Nanos batch_total = profile->stages.EmbeddingTotal() / nb;
    const double capacity_qps =
        static_cast<double>(scale.batch_size) /
        (std::max(host_per_batch, dpu_per_batch) / kNanosPerSecond);
    if (slo_ns == 0.0) slo_ns = 3.0 * batch_total;

    serve::BatcherOptions batcher;
    batcher.max_batch_size = scale.batch_size;
    batcher.max_queue_delay_ns = batch_total;
    batcher.queue_capacity = 4 * scale.batch_size;
    batcher.policy = serve::AdmissionPolicy::kShed;

    // Tune against the 1.0x-capacity stream: enumerate candidate data
    // flows, rank by the analytic predictor, calibrate the short list.
    serve::ArrivalOptions tune_arrivals;
    tune_arrivals.process = *arrival;
    tune_arrivals.qps = capacity_qps;
    tune_arrivals.seed = scale.seed + 1;
    auto tune_requests =
        serve::GenerateRequests(w.trace, 0, tune_arrivals);
    UPDLRM_CHECK_MSG(tune_requests.ok(),
                     tune_requests.status().ToString());
    pipeline::DataFlowTuner tuner(pipeline::TunerOptions{});
    auto tuned = tuner.Tune(**engine, *tune_requests, batcher);
    UPDLRM_CHECK_MSG(tuned.ok(), tuned.status().ToString());
    std::printf("# e2e: tuned data flow %s (predicted short-list "
                "calibrated on %zu candidates)\n",
                pipeline::Name(tuned->best).c_str(),
                tuned->candidates.size());

    // Full-path SLO: the embedding SLO plus 3x the chosen plan's dense
    // per-batch work, so the e2e sustainable-QPS gate scales with the
    // model instead of charging the MLP stages against embedding slack.
    core::BatchResult probe;
    probe.stages.cpu_to_dpu = profile->stages.cpu_to_dpu / nb;
    probe.stages.dpu_lookup = profile->stages.dpu_lookup / nb;
    probe.stages.dpu_to_cpu = profile->stages.dpu_to_cpu / nb;
    probe.stages.cpu_aggregate = profile->stages.cpu_aggregate / nb;
    const host::GpuTimingModel gpu_model;
    const auto costs = pipeline::ComputeBatchTaskCosts(
        w.config, (*engine)->cpu_model(), gpu_model, probe,
        scale.batch_size, tuned->best);
    const Nanos dense_per_batch =
        (tuned->best.bottom == pipeline::Backend::kGpu
             ? costs.bottom_gpu
             : costs.bottom_host()) +
        (tuned->best.top == pipeline::Backend::kGpu ? costs.top_gpu
                                                    : costs.top_host());
    const Nanos e2e_slo_ns = slo_ns + 3.0 * dense_per_batch;

    timer.BeginPhase("e2e_serve");
    check::CheckReport audit;
    std::vector<serve::RatePoint> points;
    for (const double load : load_factors) {
      const double qps = load * capacity_qps;
      serve::ArrivalOptions arrivals;
      arrivals.process = *arrival;
      arrivals.qps = qps;
      arrivals.seed = scale.seed + 1;
      auto requests = serve::GenerateRequests(w.trace, 0, arrivals);
      UPDLRM_CHECK_MSG(requests.ok(), requests.status().ToString());

      pipeline::DataFlowServeOptions options;
      options.batcher = batcher;
      options.plan = tuned->best;
      options.num_threads = scale.threads;
      if (scale.check) options.audit = &audit;
      // In --e2e mode --trace-out / --health-out capture the full-path
      // run at 1.0x capacity, including the mlp_bottom / interact /
      // mlp_top spans.
      std::optional<bench::TraceSession> trace_session;
      std::unique_ptr<telemetry::FleetMonitor> monitor;
      if (scale.e2e && load == 1.0) {
        trace_session.emplace(scale);
        monitor = bench::MakeFleetMonitor(
            w, scale, e2e_slo_ns, pim::DpuSystemConfig{}.dpus_per_rank);
        options.monitor = monitor.get();
      }
      auto result = pipeline::RunDataFlowSimulation(
          **engine, *requests, nullptr, options);
      UPDLRM_CHECK_MSG(result.ok(), result.status().ToString());
      bench::WriteHealthArtifacts(monitor.get(), scale);
      trace_session.reset();

      const serve::SloReport report =
          result->MakeSloReport(qps, e2e_slo_ns);
      points.push_back(
          serve::RatePoint{qps, report.p99_ns, report.shed});
      out.AddRow({"e2e", TablePrinter::Fmt(load, 1),
                  TablePrinter::Fmt(qps, 0),
                  TablePrinter::Fmt(NanosToMicros(report.p50_ns), 1),
                  TablePrinter::Fmt(NanosToMicros(report.p99_ns), 1),
                  std::to_string(report.shed),
                  report.slo_met ? "yes" : "NO"});
      if (!first_row) rows << ",\n";
      first_row = false;
      const std::string json = report.ToJson();
      rows << "    {\"method\": \"CA\", \"path\": \"e2e\", \"plan\": \""
           << pipeline::Name(tuned->best) << "\", \"load\": " << load
           << ", " << json.substr(1);
    }
    if (scale.check) {
      if (audit.clean()) {
        std::printf("# check[e2e-dataflow]: clean (0 violations)\n");
      } else {
        std::printf("# check[e2e-dataflow]: %s",
                    audit.ToString().c_str());
        UPDLRM_CHECK_MSG(false,
                         "data-flow audits reported violations");
      }
    }
    bench::AssertChecksClean(**engine, "e2e");
    if (sustainable.tellp() > 0) sustainable << ", ";
    sustainable << "\"e2e\": "
                << serve::MaxSustainableQps(points, e2e_slo_ns);
  }
  out.Print(std::cout);

  std::ofstream json("BENCH_serve.json", std::ios::trunc);
  json << "{\n  \"workload\": \"" << spec.name
       << "\",\n  \"arrival\": \"" << scale.arrival
       << "\",\n  \"batch_size\": " << scale.batch_size
       << ",\n  \"slo_us\": " << NanosToMicros(slo_ns)
       << ",\n  \"rows\": [\n"
       << rows.str() << "\n  ],\n  \"max_sustainable_qps\": {"
       << sustainable.str() << "}\n}\n";
  std::printf(
      "\nSLO = 3x the uniform baseline's average serial batch "
      "embedding time (one SLO for all methods; the e2e rows add 3x "
      "the tuned plan's dense per-batch work); max sustainable QPS "
      "= highest swept load with p99 <= SLO and nothing shed -> "
      "BENCH_serve.json\n");
  return 0;
}
