// Fleet scale-out: sustainable throughput and tail latency as the DPU
// fleet grows from the paper's 256-DPU testbed to 1024 and 4096 DPUs.
//
// Two scale-out shapes per partitioning method:
//
//   replicate — the fleet is replicas x the Table 2 system, each
//     replica holding a full model copy and serving a thinned slice of
//     the request stream. Replica 0 shares the front-end host; every
//     other replica's ranks live on a remote host and pay cross-host
//     ingress on pushes and pulls (pim/topology.h), so scaling is
//     near-linear rather than free.
//   shard (CA only) — one ShardedEngine spreads every table's rows
//     across the same rank groups via the statistical tiering plan
//     (partition/tiering.h, RecShard-style CDF split with a host-DRAM
//     cold tier) and merges partials through the priced reduction
//     tree. Sharding shrinks per-shard capacity pressure, not pull
//     bytes, so its throughput curve is the contrast to the replicate
//     rows.
//
// Per fleet size the bench calibrates pipeline capacity offline, sweeps
// offered load, and reports the highest load whose p99 holds a
// 3x-batch-time SLO with nothing shed. Emits BENCH_scaleout.json with
// one entry per fleet size per method (max_sustainable_qps + p99 at
// capacity). --dpus/--ranks resize one replica/shard slice (the CI
// smoke runs a small fleet); --check gates every engine on the
// hardware-contract + fleet auditors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "serve/server.h"
#include "updlrm/scaleout.h"

namespace {

using namespace updlrm;

constexpr std::uint32_t kReplicaCounts[] = {1, 4, 16};
constexpr double kLoadFactors[] = {0.6, 0.8, 1.0, 1.2};

struct Calibration {
  double capacity_qps = 0.0;
  Nanos batch_total = 0.0;
};

// One offline pass: steady-state capacity = batch_size / time of the
// slower pipeline resource (host vs DPU), as in serve_latency.cc.
template <typename EngineT>
Calibration Calibrate(EngineT& engine, std::size_t batch_size) {
  auto profile = engine.RunAll(nullptr);
  UPDLRM_CHECK_MSG(profile.ok(), profile.status().ToString());
  const double nb = static_cast<double>(profile->num_batches);
  const Nanos host_per_batch =
      (profile->stages.cpu_to_dpu + profile->stages.dpu_to_cpu +
       profile->stages.cpu_aggregate) /
      nb;
  const Nanos dpu_per_batch = profile->stages.dpu_lookup / nb;
  Calibration cal;
  cal.batch_total = profile->stages.EmbeddingTotal() / nb;
  cal.capacity_qps = static_cast<double>(batch_size) /
                     (std::max(host_per_batch, dpu_per_batch) /
                      kNanosPerSecond);
  return cal;
}

struct LoadPoint {
  serve::SloReport report;
};

// Serves `engine` at every load factor x its own capacity. `monitor`
// (optional) attaches to the 1.0x-capacity run only — the same
// representative-run convention as --trace-out in serve_latency.
template <typename EngineT>
std::vector<LoadPoint> Sweep(EngineT& engine, const bench::Workload& w,
                             const bench::BenchScale& scale,
                             serve::ArrivalProcess process,
                             double capacity_qps, Nanos batch_total,
                             Nanos slo_ns,
                             telemetry::FleetMonitor* monitor = nullptr) {
  std::vector<LoadPoint> points;
  for (const double load : kLoadFactors) {
    const double qps = load * capacity_qps;
    serve::ArrivalOptions arrivals;
    arrivals.process = process;
    arrivals.qps = qps;
    arrivals.seed = scale.seed + 1;
    auto requests = serve::GenerateRequests(w.trace, 0, arrivals);
    UPDLRM_CHECK_MSG(requests.ok(), requests.status().ToString());
    serve::ServeOptions options;
    options.batcher.max_batch_size = scale.batch_size;
    options.batcher.max_queue_delay_ns = batch_total;
    options.batcher.queue_capacity = 4 * scale.batch_size;
    options.batcher.policy = serve::AdmissionPolicy::kShed;
    if (monitor != nullptr && load == 1.0) options.monitor = monitor;
    auto result = serve::RunServeSimulation(engine, *requests, options);
    UPDLRM_CHECK_MSG(result.ok(), result.status().ToString());
    points.push_back({result->MakeSloReport(qps, slo_ns)});
  }
  return points;
}

struct FleetResult {
  double max_sustainable_qps = 0.0;
  Nanos p99_at_capacity_ns = 0.0;
};

// Combines one local + (replicas - 1) remote replicas: aggregate
// offered load splits in proportion to each replica's own capacity, so
// fleet p99 is the slower replica's p99 and anything either replica
// sheds counts against the fleet.
FleetResult CombineReplicas(const std::vector<LoadPoint>& local,
                            const std::vector<LoadPoint>& remote,
                            std::uint32_t replicas, double cap_local,
                            double cap_remote, Nanos slo_ns) {
  std::vector<serve::RatePoint> points;
  FleetResult out;
  const double cap_fleet =
      cap_local + static_cast<double>(replicas - 1) * cap_remote;
  for (std::size_t i = 0; i < local.size(); ++i) {
    const double qps = kLoadFactors[i] * cap_fleet;
    Nanos p99 = local[i].report.p99_ns;
    std::uint64_t shed = local[i].report.shed;
    if (replicas > 1) {
      p99 = std::max(p99, remote[i].report.p99_ns);
      shed += (replicas - 1) * remote[i].report.shed;
    }
    points.push_back(serve::RatePoint{qps, p99, shed});
    if (kLoadFactors[i] == 1.0) out.p99_at_capacity_ns = p99;
  }
  out.max_sustainable_qps = serve::MaxSustainableQps(points, slo_ns);
  return out;
}

FleetResult SingleEngineResult(const std::vector<LoadPoint>& points,
                               double capacity_qps, Nanos slo_ns) {
  std::vector<serve::RatePoint> rate;
  FleetResult out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    rate.push_back(serve::RatePoint{kLoadFactors[i] * capacity_qps,
                                    points[i].report.p99_ns,
                                    points[i].report.shed});
    if (kLoadFactors[i] == 1.0) {
      out.p99_at_capacity_ns = points[i].report.p99_ns;
    }
  }
  out.max_sustainable_qps = serve::MaxSustainableQps(rate, slo_ns);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== Fleet scale-out: sustainable QPS and p99 at 1x/4x/16x the "
      "Table 2 system ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);
  bench::HostTimer timer("fig12_scaleout", scale);
  auto arrival = serve::ParseArrivalProcess(scale.arrival);
  UPDLRM_CHECK_MSG(arrival.ok(), arrival.status().ToString());

  const pim::DpuSystemConfig base = bench::MakePaperSystemConfig(scale);
  const std::uint32_t base_ranks = base.num_dpus / base.dpus_per_rank;
  std::printf("# fleet slice: %u DPUs in %u rank(s); fleets swept: "
              "%u / %u / %u DPUs\n\n",
              base.num_dpus, base_ranks, base.num_dpus,
              4 * base.num_dpus, 16 * base.num_dpus);

  TablePrinter out({"workload", "method", "dpus", "max qps", "p99 (us)",
                    "vs 1x"});
  std::ostringstream json_workloads;
  bool first_workload = true;

  for (const std::size_t wi : {std::size_t{0}, std::size_t{4}}) {
    const trace::DatasetSpec& spec = trace::Table1Workloads()[wi];
    timer.BeginPhase("setup");
    const bench::Workload w = bench::PrepareWorkload(spec, scale);
    Nanos slo_ns = 0.0;  // 3x the uniform local replica's batch time

    // methods["U"|"NU"|"CA"|"CA-shard"][fleet index]
    std::vector<std::pair<std::string, std::vector<FleetResult>>> methods;

    for (const partition::Method method :
         {partition::Method::kUniform, partition::Method::kNonUniform,
          partition::Method::kCacheAware}) {
      timer.BeginPhase("replicate");
      const std::string name(partition::MethodShortName(method));
      // Local replica: the front-end host's own rank group.
      auto local_system = pim::DpuSystem::Create(base);
      UPDLRM_CHECK_MSG(local_system.ok(),
                       local_system.status().ToString());
      auto local = core::UpDlrmEngine::Create(
          nullptr, w.config, w.trace, local_system->get(),
          bench::PaperEngineOptions(method, 0, scale));
      UPDLRM_CHECK_MSG(local.ok(), local.status().ToString());
      const Calibration cal_local = Calibrate(**local, scale.batch_size);
      if (slo_ns == 0.0) slo_ns = 3.0 * cal_local.batch_total;

      // Remote replica: same slice, ranks owned by another host — every
      // push/pull additionally pays the cross-host hop.
      pim::DpuSystemConfig remote_cfg = base;
      remote_cfg.topology.ranks_per_host = base_ranks;
      remote_cfg.topology.host_offset = 1;
      auto remote_system = pim::DpuSystem::Create(remote_cfg);
      UPDLRM_CHECK_MSG(remote_system.ok(),
                       remote_system.status().ToString());
      auto remote = core::UpDlrmEngine::Create(
          nullptr, w.config, w.trace, remote_system->get(),
          bench::PaperEngineOptions(method, 0, scale));
      UPDLRM_CHECK_MSG(remote.ok(), remote.status().ToString());
      const Calibration cal_remote =
          Calibrate(**remote, scale.batch_size);

      const auto points_local = Sweep(**local, w, scale, *arrival,
                                      cal_local.capacity_qps,
                                      cal_local.batch_total, slo_ns);
      const auto points_remote = Sweep(**remote, w, scale, *arrival,
                                       cal_remote.capacity_qps,
                                       cal_remote.batch_total, slo_ns);
      bench::AssertChecksClean(**local, spec.name + "/" + name + "/local");
      bench::AssertChecksClean(**remote,
                               spec.name + "/" + name + "/remote");

      std::vector<FleetResult> fleets;
      for (const std::uint32_t replicas : kReplicaCounts) {
        fleets.push_back(CombineReplicas(
            points_local, points_remote, replicas,
            cal_local.capacity_qps, cal_remote.capacity_qps, slo_ns));
      }
      methods.emplace_back(name, std::move(fleets));
    }

    // Sharded contrast: one model spread across the same rank groups
    // (shard 0 local, the rest remote), cold tail in host DRAM.
    {
      timer.BeginPhase("shard");
      std::vector<FleetResult> fleets;
      for (const std::uint32_t shards : kReplicaCounts) {
        core::ShardedEngineConfig fleet;
        fleet.shard_system = base;
        fleet.tiering.num_shards = shards;
        fleet.tiering.dram_epsilon = 0.02;
        fleet.fleet_topology.ranks_per_host = base_ranks;
        auto sharded = core::ShardedEngine::Create(
            nullptr, w.config, w.trace, fleet,
            bench::PaperEngineOptions(partition::Method::kCacheAware, 0,
                                      scale));
        UPDLRM_CHECK_MSG(sharded.ok(), sharded.status().ToString());
        const Calibration cal = Calibrate(**sharded, scale.batch_size);
        // --health-out monitors one representative run: the largest
        // CA-shard fleet on the first workload, at 1.0x capacity (the
        // configuration with the most units and the reduction tree in
        // play). Units are global DPU ids — dpus_per_rank consecutive
        // units per rank, num_dpus per shard.
        std::unique_ptr<telemetry::FleetMonitor> monitor;
        if (wi == 0 &&
            shards == kReplicaCounts[std::size(kReplicaCounts) - 1]) {
          monitor = bench::MakeFleetMonitor(
              w, scale, slo_ns, base.dpus_per_rank, base.num_dpus);
        }
        const auto points = Sweep(**sharded, w, scale, *arrival,
                                  cal.capacity_qps, cal.batch_total,
                                  slo_ns, monitor.get());
        bench::AssertChecksClean(**sharded,
                                 spec.name + "/CA-shard/" +
                                     std::to_string(shards));
        bench::WriteHealthArtifacts(monitor.get(), scale);
        fleets.push_back(
            SingleEngineResult(points, cal.capacity_qps, slo_ns));
      }
      methods.emplace_back("CA-shard", std::move(fleets));
    }

    // Table rows + JSON.
    std::ostringstream json_fleets;
    for (std::size_t fi = 0; fi < std::size(kReplicaCounts); ++fi) {
      const std::uint32_t dpus = kReplicaCounts[fi] * base.num_dpus;
      json_fleets << (fi > 0 ? ",\n" : "") << "      {\"dpus\": " << dpus
                  << ", \"replicas\": " << kReplicaCounts[fi]
                  << ", \"methods\": {";
      for (std::size_t mi = 0; mi < methods.size(); ++mi) {
        const auto& [name, fleets] = methods[mi];
        const FleetResult& r = fleets[fi];
        const double base_qps = fleets[0].max_sustainable_qps;
        out.AddRow({spec.name, name, std::to_string(dpus),
                    TablePrinter::Fmt(r.max_sustainable_qps, 0),
                    TablePrinter::Fmt(
                        NanosToMicros(r.p99_at_capacity_ns), 1),
                    TablePrinter::Fmt(
                        base_qps > 0.0
                            ? r.max_sustainable_qps / base_qps
                            : 0.0,
                        2) + "x"});
        json_fleets << (mi > 0 ? ", " : "") << "\"" << name
                    << "\": {\"max_sustainable_qps\": "
                    << r.max_sustainable_qps << ", \"p99_us\": "
                    << NanosToMicros(r.p99_at_capacity_ns) << "}";
      }
      json_fleets << "}}";
    }
    json_workloads << (first_workload ? "" : ",\n") << "    \""
                   << spec.name << "\": {\"slo_us\": "
                   << NanosToMicros(slo_ns) << ", \"fleets\": [\n"
                   << json_fleets.str() << "\n    ]}";
    first_workload = false;
  }
  out.Print(std::cout);

  std::ofstream json("BENCH_scaleout.json", std::ios::trunc);
  json << "{\n  \"batch_size\": " << scale.batch_size
       << ",\n  \"slice_dpus\": " << base.num_dpus
       << ",\n  \"fleet_dpus\": [" << base.num_dpus << ", "
       << 4 * base.num_dpus << ", " << 16 * base.num_dpus
       << "],\n  \"workloads\": {\n"
       << json_workloads.str() << "\n  }\n}\n";
  std::printf(
      "\nmax sustainable QPS = highest swept load with p99 <= 3x the "
      "uniform local replica's batch time and nothing shed; replicate "
      "rows aggregate one local + N-1 remote replicas, CA-shard rows "
      "spread one model across the fleet -> BENCH_scaleout.json\n");
  return 0;
}
