// Ablation (extension): profiling staleness under popularity drift.
//
// UpDLRM partitions and mines its cache from a *historical* trace
// (§3.2: "by profiling the historical user-item access trace"). This
// ablation quantifies what happens when popularity moves on: the trace
// generator swaps a fraction of the hot items' identities for the
// second half of the trace; plans are built from first-half profiles
// and evaluated by replaying the second half.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "cache/grace.h"
#include "common/table.h"
#include "partition/cache_aware.h"
#include "partition/metrics.h"
#include "partition/nonuniform.h"
#include "trace/profiler.h"

namespace updlrm {
namespace {

trace::TableTrace SliceSamples(const trace::TableTrace& table,
                               std::size_t begin, std::size_t end) {
  trace::TableTrace out;
  for (std::size_t s = begin; s < end; ++s) out.AppendSample(table.Sample(s));
  return out;
}

}  // namespace
}  // namespace updlrm

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: profile-then-serve under popularity drift "
      "(GoodReads) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());

  TablePrinter out({"drift", "NU imbalance (served)", "CA traffic cut",
                    "CA imbalance (served)"});
  for (double drift : {0.0, 0.25, 0.5, 1.0}) {
    trace::TraceGeneratorOptions options;
    options.num_samples = scale.num_samples;
    options.num_tables = 1;
    options.popularity_drift = drift;
    auto trace = trace::TraceGenerator(*spec).Generate(options);
    UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());

    const std::size_t half = scale.num_samples / 2;
    const trace::TableTrace history =
        SliceSamples(trace->tables[0], 0, half);
    const trace::TableTrace served =
        SliceSamples(trace->tables[0], half, scale.num_samples);

    // Profile + plan on history only.
    const auto freq = trace::ItemFrequencies(history, spec->num_items);
    auto geom = partition::GroupGeometry::Make(
        dlrm::TableShape{spec->num_items, 32}, 32, 8);
    UPDLRM_CHECK(geom.ok());

    auto nu = partition::NonUniformPartition(*geom, freq);
    UPDLRM_CHECK(nu.ok());
    const auto nu_report = partition::ReplayLoads(served, *nu);

    auto mined = cache::GraceMiner().Mine(history, spec->num_items);
    UPDLRM_CHECK_MSG(mined.ok(), mined.status().ToString());
    partition::CacheAwareOptions ca_options;
    ca_options.capacity = partition::BinCapacity::FromMram(
        64 * kMiB, 8 * kMiB,
        AlignUp(mined->TotalStorageBytes(geom->row_bytes()) * 13 /
                    (10 * geom->row_shards),
                8));
    auto ca =
        partition::CacheAwarePartition(*geom, freq, *mined, ca_options);
    UPDLRM_CHECK_MSG(ca.ok(), ca.status().ToString());
    const auto ca_report = partition::ReplayLoads(served, ca->plan);

    out.AddRow({TablePrinter::FmtPercent(drift, 0),
                TablePrinter::Fmt(nu_report.imbalance, 2),
                TablePrinter::FmtPercent(ca_report.TrafficReduction(), 1),
                TablePrinter::Fmt(ca_report.imbalance, 2)});
  }
  out.Print(std::cout);
  std::printf(
      "\nwith stationary popularity the history-built plans stay "
      "balanced and the cache keeps cutting traffic; as drift grows the "
      "cached partial sums stop matching and balance erodes — "
      "re-profiling cadence is an operational knob\n");
  return 0;
}
