// Ablation (extension): profiling staleness under popularity drift.
//
// UpDLRM partitions and mines its cache from a *historical* trace
// (§3.2: "by profiling the historical user-item access trace"). This
// ablation quantifies what happens when popularity moves on: the trace
// generator swaps a fraction of the hot items' identities for the
// second half of the trace; plans are built from first-half profiles
// and evaluated by replaying the second half.
//
// The same history/served split doubles as the validation harness for
// the fleet-health drift detector (telemetry/monitor.h): a FleetMonitor
// armed with the history-mined baseline replays the served half in
// fixed windows and must (a) stay silent at drift 0 — zero bad windows,
// no alert — and (b) raise its alert within kMaxAlertWindow windows of
// the shift for drift >= 0.5. Either failure aborts the bench, so a CI
// run of abl_drift is also the detector's end-to-end gate.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <span>

#include "bench_common.h"
#include "cache/grace.h"
#include "common/table.h"
#include "partition/cache_aware.h"
#include "partition/metrics.h"
#include "partition/nonuniform.h"
#include "telemetry/monitor.h"
#include "trace/profiler.h"

namespace updlrm {
namespace {

trace::TableTrace SliceSamples(const trace::TableTrace& table,
                               std::size_t begin, std::size_t end) {
  trace::TableTrace out;
  for (std::size_t s = begin; s < end; ++s) out.AppendSample(table.Sample(s));
  return out;
}

// The detector must alert no later than this window index; the shift
// is at window 0 (the served half starts drifted), so this is "within
// <= 4 windows of the injected skew shift".
constexpr std::int64_t kMaxAlertWindow = 4;

struct DriftMonitorVerdict {
  std::int64_t first_alert_window = -1;
  std::uint64_t bad_windows = 0;
  std::uint64_t windows = 0;
};

// Replays the served half through a FleetMonitor armed with the
// history-built baseline, in fixed same-size sample windows (synthetic
// timestamps: the detector is keyed to simulated ns, so the replay
// assigns each sample a time inside its window).
DriftMonitorVerdict ReplayThroughMonitor(
    const trace::TableTrace& served,
    std::span<const std::uint64_t> history_freq) {
  telemetry::MonitorOptions options;
  options.window_ns = 1.0e3;
  const std::size_t samples_per_window =
      std::max<std::size_t>(32, served.num_samples() / 4);
  telemetry::FleetMonitor monitor(options);
  const auto by_freq = trace::ItemsByFrequency(history_freq);
  monitor.AddTableBaseline(
      0, telemetry::BuildDriftBaseline(history_freq, by_freq,
                                       options.drift));
  for (std::size_t s = 0; s < served.num_samples(); ++s) {
    const Nanos t = static_cast<double>(s / samples_per_window) *
                    options.window_ns;
    monitor.OnAccess(0, t, served.Sample(s));
  }
  monitor.Finalize();
  DriftMonitorVerdict verdict;
  verdict.first_alert_window = monitor.summary().first_drift_alert_window;
  verdict.bad_windows = monitor.summary().drift_bad_table_windows;
  verdict.windows = monitor.summary().windows;
  return verdict;
}

}  // namespace
}  // namespace updlrm

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: profile-then-serve under popularity drift "
      "(GoodReads) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());

  TablePrinter out({"drift", "NU imbalance (served)", "CA traffic cut",
                    "CA imbalance (served)", "detector"});
  for (double drift : {0.0, 0.25, 0.5, 1.0}) {
    trace::TraceGeneratorOptions options;
    options.num_samples = scale.num_samples;
    options.num_tables = 1;
    options.popularity_drift = drift;
    auto trace = trace::TraceGenerator(*spec).Generate(options);
    UPDLRM_CHECK_MSG(trace.ok(), trace.status().ToString());

    const std::size_t half = scale.num_samples / 2;
    const trace::TableTrace history =
        SliceSamples(trace->tables[0], 0, half);
    const trace::TableTrace served =
        SliceSamples(trace->tables[0], half, scale.num_samples);

    // Profile + plan on history only.
    const auto freq = trace::ItemFrequencies(history, spec->num_items);
    auto geom = partition::GroupGeometry::Make(
        dlrm::TableShape{spec->num_items, 32}, 32, 8);
    UPDLRM_CHECK(geom.ok());

    auto nu = partition::NonUniformPartition(*geom, freq);
    UPDLRM_CHECK(nu.ok());
    const auto nu_report = partition::ReplayLoads(served, *nu);

    auto mined = cache::GraceMiner().Mine(history, spec->num_items);
    UPDLRM_CHECK_MSG(mined.ok(), mined.status().ToString());
    partition::CacheAwareOptions ca_options;
    ca_options.capacity = partition::BinCapacity::FromMram(
        64 * kMiB, 8 * kMiB,
        AlignUp(mined->TotalStorageBytes(geom->row_bytes()) * 13 /
                    (10 * geom->row_shards),
                8));
    auto ca =
        partition::CacheAwarePartition(*geom, freq, *mined, ca_options);
    UPDLRM_CHECK_MSG(ca.ok(), ca.status().ToString());
    const auto ca_report = partition::ReplayLoads(served, ca->plan);

    // Detector gate: silent when stationary, alerting within
    // kMaxAlertWindow windows once the hot set moved.
    const DriftMonitorVerdict verdict = ReplayThroughMonitor(served, freq);
    std::string detector;
    if (drift == 0.0) {
      UPDLRM_CHECK_MSG(verdict.bad_windows == 0 &&
                           verdict.first_alert_window < 0,
                       "drift detector false positive on stationary data");
      detector = "quiet";
    } else if (verdict.first_alert_window >= 0) {
      detector =
          "alert@w" + std::to_string(verdict.first_alert_window);
      UPDLRM_CHECK_MSG(verdict.first_alert_window <= kMaxAlertWindow,
                       "drift detector alerted too late (window " +
                           std::to_string(verdict.first_alert_window) +
                           " > " + std::to_string(kMaxAlertWindow) + ")");
    } else {
      detector = "quiet";
      UPDLRM_CHECK_MSG(drift < 0.5,
                       "drift detector missed a " +
                           TablePrinter::FmtPercent(drift, 0) +
                           " hot-set shift");
    }

    out.AddRow({TablePrinter::FmtPercent(drift, 0),
                TablePrinter::Fmt(nu_report.imbalance, 2),
                TablePrinter::FmtPercent(ca_report.TrafficReduction(), 1),
                TablePrinter::Fmt(ca_report.imbalance, 2), detector});
  }
  out.Print(std::cout);
  std::printf(
      "\nwith stationary popularity the history-built plans stay "
      "balanced and the cache keeps cutting traffic; as drift grows the "
      "cached partial sums stop matching and balance erodes — "
      "re-profiling cadence is an operational knob\n");
  return 0;
}
