// Ablation: padded-parallel vs sequential host transfers.
//
// §2.2: host<->MRAM transfers run concurrently only when all buffers
// are equal-sized, otherwise sequentially. Non-uniform partitioning
// produces ragged per-DPU index buffers, so UpDLRM pads them to the
// batch maximum to stay on the parallel path. This ablation quantifies
// what the sequential fallback would cost.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: padded vs sequential stage-1/3 transfers (GoodReads, "
      "CA, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<trace::TableProfile> profiles =
      bench::ProfileTables(w);
  const std::vector<cache::CacheRes> caches =
      bench::MineCaches(w, 0, &profiles);

  // Three transfer modes in one table: the classic per-call padded
  // path, the ragged sequential fallback, and (with --coalesce) the
  // batched transfer planner that picks the cheapest of {coalesced
  // padded, per-table padded, sequential} from the actual buffer sizes.
  struct Mode {
    const char* name;
    bool pad;
    bool coalesce;
  };
  std::vector<Mode> modes = {{"padded (parallel)", true, false},
                             {"ragged (sequential)", false, false}};
  if (scale.coalesce) {
    modes.push_back({"coalesced (planned)", true, true});
  }

  TablePrinter out({"transfer mode", "stage1 (us/batch)",
                    "stage3 (us/batch)", "embedding total (us/batch)"});
  double padded_total = 0.0;
  double ragged_total = 0.0;
  double coalesced_total = 0.0;
  for (const Mode& mode : modes) {
    auto system = bench::MakePaperSystem();
    core::EngineOptions options = bench::PaperEngineOptions(
        partition::Method::kCacheAware, 8, scale);
    options.premined_cache = &caches;
    options.preprofiled = &profiles;
    options.pad_transfers = mode.pad;
    options.dedup = false;
    options.wram_cache_rows = 0;
    options.coalesce_transfers = mode.coalesce;
    auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                             system.get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
    const auto batches = static_cast<double>(report->num_batches);
    if (mode.coalesce) {
      coalesced_total = report->EmbeddingTotal();
    } else {
      (mode.pad ? padded_total : ragged_total) = report->EmbeddingTotal();
    }
    out.AddRow({mode.name,
                TablePrinter::FmtMicros(
                    report->stages.cpu_to_dpu / batches, 0),
                TablePrinter::FmtMicros(
                    report->stages.dpu_to_cpu / batches, 0),
                TablePrinter::FmtMicros(
                    report->EmbeddingTotal() / batches, 0)});
  }
  out.Print(std::cout);
  std::printf(
      "\nsequential fallback costs %.2fx the padded embedding time — "
      "why the engine pads (§2.2's equal-buffer rule)\n",
      ragged_total / padded_total);
  if (scale.coalesce) {
    std::printf(
        "coalesced plan: %.2fx the padded embedding time (never worse — "
        "it includes the padded call as a candidate and skips zero-byte "
        "DPUs when padding)\n",
        coalesced_total / padded_total);
  } else {
    std::printf("pass --coalesce to add the batched transfer-plan row\n");
  }
  return 0;
}
