// Ablation: padded-parallel vs sequential host transfers.
//
// §2.2: host<->MRAM transfers run concurrently only when all buffers
// are equal-sized, otherwise sequentially. Non-uniform partitioning
// produces ragged per-DPU index buffers, so UpDLRM pads them to the
// batch maximum to stay on the parallel path. This ablation quantifies
// what the sequential fallback would cost.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace updlrm;
  std::printf(
      "== Ablation: padded vs sequential stage-1/3 transfers (GoodReads, "
      "CA, Nc=8) ==\n\n");
  const bench::BenchScale scale = bench::ParseScale(argc, argv);

  auto spec = trace::FindDataset("read");
  UPDLRM_CHECK(spec.ok());
  const bench::Workload w = bench::PrepareWorkload(*spec, scale);
  const std::vector<cache::CacheRes> caches = bench::MineCaches(w);

  TablePrinter out({"transfer mode", "stage1 (us/batch)",
                    "stage3 (us/batch)", "embedding total (us/batch)"});
  double padded_total = 0.0;
  double ragged_total = 0.0;
  for (bool pad : {true, false}) {
    auto system = bench::MakePaperSystem();
    core::EngineOptions options = bench::PaperEngineOptions(
        partition::Method::kCacheAware, 8, scale);
    options.premined_cache = &caches;
    options.pad_transfers = pad;
    auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                             system.get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK_MSG(report.ok(), report.status().ToString());
    const auto batches = static_cast<double>(report->num_batches);
    (pad ? padded_total : ragged_total) = report->EmbeddingTotal();
    out.AddRow({pad ? "padded (parallel)" : "ragged (sequential)",
                TablePrinter::FmtMicros(
                    report->stages.cpu_to_dpu / batches, 0),
                TablePrinter::FmtMicros(
                    report->stages.dpu_to_cpu / batches, 0),
                TablePrinter::FmtMicros(
                    report->EmbeddingTotal() / batches, 0)});
  }
  out.Print(std::cout);
  std::printf(
      "\nsequential fallback costs %.2fx the padded embedding time — "
      "why the engine pads (§2.2's equal-buffer rule)\n",
      ragged_total / padded_total);
  return 0;
}
