#include "cache/freq_pairs.h"

#include <gtest/gtest.h>

#include "cache/grace.h"
#include "trace/generator.h"

namespace updlrm::cache {
namespace {

trace::TableTrace CliqueTrace() {
  trace::DatasetSpec spec;
  spec.name = "fp";
  spec.num_items = 5'000;
  spec.avg_reduction = 24.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.7;
  spec.num_hot_items = 128;
  spec.seed = 17;
  trace::TraceGeneratorOptions options;
  options.num_samples = 800;
  options.num_tables = 1;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  return std::move(t->tables[0]);
}

TEST(FreqPairsTest, OptionsValidation) {
  FreqPairOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_hot_items = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = FreqPairOptions{};
  options.list_size = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = FreqPairOptions{};
  options.list_size = kMaxCacheListSize + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = FreqPairOptions{};
  options.max_lists = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(FreqPairsTest, ProducesValidBenefitSortedLists) {
  const auto table = CliqueTrace();
  auto res = FreqPairMiner().Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->lists.empty());
  EXPECT_TRUE(res->Validate(5'000).ok());
  for (const auto& list : res->lists) {
    EXPECT_EQ(list.items.size(), 2u);
    EXPECT_GT(list.benefit, 0.0);
  }
}

TEST(FreqPairsTest, ConfigurableListSize) {
  FreqPairOptions options;
  options.list_size = 3;
  const auto table = CliqueTrace();
  auto res = FreqPairMiner(options).Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  for (const auto& list : res->lists) {
    EXPECT_EQ(list.items.size(), 3u);
  }
}

TEST(FreqPairsTest, GraceBeatsFrequencyPairingOnCliqueTraces) {
  // The ablation's point: co-occurrence-aware mining captures the
  // planted cliques; popularity-rank pairing only stumbles into them.
  const auto table = CliqueTrace();
  auto grace = GraceMiner().Mine(table, 5'000);
  auto pairs = FreqPairMiner().Mine(table, 5'000);
  ASSERT_TRUE(grace.ok() && pairs.ok());
  EXPECT_GT(grace->TotalBenefit(), 1.5 * pairs->TotalBenefit());
}

TEST(FreqPairsTest, RejectsZeroItems) {
  trace::TableTrace table;
  table.AppendSample(std::vector<std::uint32_t>{});
  EXPECT_FALSE(FreqPairMiner().Mine(table, 0).ok());
}

}  // namespace
}  // namespace updlrm::cache
