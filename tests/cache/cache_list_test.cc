#include "cache/cache_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::cache {
namespace {

CacheRes MakeRes() {
  CacheRes res;
  res.lists.push_back(CacheList{{1, 2, 3}, 100.0});
  res.lists.push_back(CacheList{{5, 9}, 40.0});
  res.lists.push_back(CacheList{{10, 11}, 10.0});
  return res;
}

TEST(CacheListTest, SlotsAreAllNonEmptySubsets) {
  EXPECT_EQ((CacheList{{1, 2}, 0.0}).NumSlots(), 3u);
  EXPECT_EQ((CacheList{{1, 2, 3}, 0.0}).NumSlots(), 7u);
  EXPECT_EQ((CacheList{{1, 2, 3, 4}, 0.0}).NumSlots(), 15u);
}

TEST(CacheListTest, StorageBytes) {
  // The paper's {a,b,c} example: 7 partial sums of one row slice each.
  EXPECT_EQ((CacheList{{1, 2, 3}, 0.0}).StorageBytes(32), 7u * 32);
}

TEST(CacheListTest, ValidateRules) {
  EXPECT_TRUE((CacheList{{1, 2}, 1.0}).Validate(10).ok());
  EXPECT_FALSE((CacheList{{1}, 1.0}).Validate(10).ok());        // too small
  EXPECT_FALSE((CacheList{{1, 2, 3, 4, 5}, 1.0}).Validate(10).ok());
  EXPECT_FALSE((CacheList{{2, 1}, 1.0}).Validate(10).ok());     // unsorted
  EXPECT_FALSE((CacheList{{1, 1}, 1.0}).Validate(10).ok());     // dup
  EXPECT_FALSE((CacheList{{1, 10}, 1.0}).Validate(10).ok());    // range
  EXPECT_FALSE((CacheList{{1, 2}, -1.0}).Validate(10).ok());    // benefit
}

TEST(CacheResTest, TotalsAndValidation) {
  const CacheRes res = MakeRes();
  EXPECT_EQ(res.TotalStorageBytes(8), 7u * 8 + 3u * 8 + 3u * 8);
  EXPECT_DOUBLE_EQ(res.TotalBenefit(), 150.0);
  EXPECT_TRUE(res.Validate(20).ok());
}

TEST(CacheResTest, ValidateRejectsOverlapAndBadOrder) {
  CacheRes overlap = MakeRes();
  overlap.lists.push_back(CacheList{{3, 7}, 5.0});  // 3 reused
  EXPECT_FALSE(overlap.Validate(20).ok());

  CacheRes unordered = MakeRes();
  std::swap(unordered.lists[0], unordered.lists[2]);
  EXPECT_FALSE(unordered.Validate(20).ok());
}

TEST(CacheResTest, ItemToListMapping) {
  const CacheRes res = MakeRes();
  const auto map = res.BuildItemToList(20);
  EXPECT_EQ(map[1], 0);
  EXPECT_EQ(map[3], 0);
  EXPECT_EQ(map[5], 1);
  EXPECT_EQ(map[11], 2);
  EXPECT_EQ(map[0], -1);
  EXPECT_EQ(map[19], -1);
}

TEST(CacheResTest, TrimToFullBudgetKeepsEverything) {
  const CacheRes res = MakeRes();
  const CacheRes trimmed = res.TrimToBudgetFraction(8, 1.0);
  EXPECT_EQ(trimmed.lists.size(), 3u);
}

TEST(CacheResTest, TrimKeepsHighestBenefitPrefix) {
  const CacheRes res = MakeRes();
  // Full need: 56 + 24 + 24 = 104 bytes. 60% => 62 bytes: the 56-byte
  // top list fits; the next (24) would exceed; probing continues but
  // nothing else fits either... 56 + 24 = 80 > 62.
  const CacheRes trimmed = res.TrimToBudgetBytes(8, 62);
  ASSERT_EQ(trimmed.lists.size(), 1u);
  EXPECT_DOUBLE_EQ(trimmed.lists[0].benefit, 100.0);
}

TEST(CacheResTest, TrimProbesSmallerLists) {
  const CacheRes res = MakeRes();
  // 30 bytes: the 56-byte list does not fit, but a 24-byte one does.
  const CacheRes trimmed = res.TrimToBudgetBytes(8, 30);
  ASSERT_EQ(trimmed.lists.size(), 1u);
  EXPECT_DOUBLE_EQ(trimmed.lists[0].benefit, 40.0);
}

TEST(CacheResTest, TrimToZeroIsEmpty) {
  EXPECT_TRUE(MakeRes().TrimToBudgetFraction(8, 0.0).lists.empty());
}

TEST(IntersectionMaskTest, ComputesBitmask) {
  const std::vector<std::uint32_t> sample = {1, 3, 5, 9};
  const std::vector<std::uint32_t> list = {3, 4, 9};
  // items 3 (bit 0) and 9 (bit 2) present.
  EXPECT_EQ(IntersectionMask(sample, list), 0b101u);
}

TEST(IntersectionMaskTest, EmptyIntersectionIsZero) {
  const std::vector<std::uint32_t> sample = {1, 2};
  const std::vector<std::uint32_t> list = {3, 4};
  EXPECT_EQ(IntersectionMask(sample, list), 0u);
}

TEST(IntersectionMaskTest, FullIntersection) {
  const std::vector<std::uint32_t> sample = {1, 2, 3, 4};
  const std::vector<std::uint32_t> list = {2, 3, 4};
  EXPECT_EQ(IntersectionMask(sample, list), 0b111u);
}

}  // namespace
}  // namespace updlrm::cache
