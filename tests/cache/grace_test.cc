#include "cache/grace.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/generator.h"

namespace updlrm::cache {
namespace {

trace::TableTrace TraceWithPlantedCliques(trace::DatasetSpec* out_spec,
                                          trace::CliqueModel* out_model) {
  trace::DatasetSpec spec;
  spec.name = "mine";
  spec.num_items = 5'000;
  spec.avg_reduction = 24.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.7;
  spec.num_hot_items = 128;
  spec.seed = 17;
  trace::TraceGeneratorOptions options;
  options.num_samples = 800;
  options.num_tables = 1;
  trace::TraceGenerator gen(spec);
  auto t = gen.Generate(options);
  UPDLRM_CHECK(t.ok());
  if (out_spec != nullptr) *out_spec = spec;
  if (out_model != nullptr) *out_model = gen.BuildCliqueModel(0, options);
  return std::move(t->tables[0]);
}

TEST(GraceTest, OptionsValidation) {
  GraceOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_hot_items = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = GraceOptions{};
  options.max_list_size = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = GraceOptions{};
  options.max_list_size = kMaxCacheListSize + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = GraceOptions{};
  options.max_lists = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(GraceTest, MinedListsAreValid) {
  const auto table = TraceWithPlantedCliques(nullptr, nullptr);
  GraceMiner miner;
  auto res = miner.Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->lists.empty());
  EXPECT_TRUE(res->Validate(5'000).ok());
}

TEST(GraceTest, BenefitsAreSortedAndPositive) {
  const auto table = TraceWithPlantedCliques(nullptr, nullptr);
  auto res = GraceMiner().Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  double prev = 1e18;
  for (const auto& list : res->lists) {
    EXPECT_GT(list.benefit, 0.0);
    EXPECT_LE(list.benefit, prev);
    prev = list.benefit;
  }
}

TEST(GraceTest, RecoversPlantedCoOccurrence) {
  // The miner should group items from the same planted clique: check
  // that a large share of mined pairs are clique-mates.
  trace::CliqueModel model;
  const auto table = TraceWithPlantedCliques(nullptr, &model);
  auto res = GraceMiner().Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->lists.empty());

  // item -> planted clique id
  std::vector<std::int32_t> planted(5'000, -1);
  for (std::size_t c = 0; c < model.cliques.size(); ++c) {
    for (std::uint32_t item : model.cliques[c]) {
      planted[item] = static_cast<std::int32_t>(c);
    }
  }
  std::size_t matched_pairs = 0;
  std::size_t total_pairs = 0;
  for (const auto& list : res->lists) {
    for (std::size_t i = 0; i < list.items.size(); ++i) {
      for (std::size_t j = i + 1; j < list.items.size(); ++j) {
        ++total_pairs;
        if (planted[list.items[i]] >= 0 &&
            planted[list.items[i]] == planted[list.items[j]]) {
          ++matched_pairs;
        }
      }
    }
  }
  ASSERT_GT(total_pairs, 0u);
  EXPECT_GT(static_cast<double>(matched_pairs) /
                static_cast<double>(total_pairs),
            0.6);
}

TEST(GraceTest, BenefitMatchesReplayDefinition) {
  // Construct a tiny trace by hand: items {1,2} co-occur twice, once
  // with only item 1 present.
  trace::TableTrace table;
  table.AppendSample(std::vector<std::uint32_t>{1, 2});
  table.AppendSample(std::vector<std::uint32_t>{1, 2, 3});
  table.AppendSample(std::vector<std::uint32_t>{1});
  CacheRes res;
  res.lists.push_back(CacheList{{1, 2}, 0.0});
  const CacheRes scored = ScoreCacheLists(table, 5, res);
  ASSERT_EQ(scored.lists.size(), 1u);
  // Two samples intersect with both items: each saves 1 access.
  EXPECT_DOUBLE_EQ(scored.lists[0].benefit, 2.0);
}

TEST(GraceTest, ScoreDropsZeroBenefitLists) {
  trace::TableTrace table;
  table.AppendSample(std::vector<std::uint32_t>{1});
  table.AppendSample(std::vector<std::uint32_t>{2});
  CacheRes res;
  res.lists.push_back(CacheList{{1, 2}, 99.0});  // never co-occur
  const CacheRes scored = ScoreCacheLists(table, 5, res);
  EXPECT_TRUE(scored.lists.empty());
}

TEST(GraceTest, RespectsMaxListSize) {
  GraceOptions options;
  options.max_list_size = 2;
  const auto table = TraceWithPlantedCliques(nullptr, nullptr);
  auto res = GraceMiner(options).Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  for (const auto& list : res->lists) {
    EXPECT_LE(list.items.size(), 2u);
  }
}

TEST(GraceTest, RespectsMaxLists) {
  GraceOptions options;
  options.max_lists = 3;
  const auto table = TraceWithPlantedCliques(nullptr, nullptr);
  auto res = GraceMiner(options).Mine(table, 5'000);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->lists.size(), 3u);
}

TEST(GraceTest, BalancedTraceYieldsFewOrNoLists) {
  // With uniform popularity and no planted structure, co-occurrence
  // support stays below the threshold ("clo is quite balanced, and the
  // cache rate is low").
  const trace::DatasetSpec spec =
      trace::MakeBalancedSyntheticSpec(20'000, 20.0);
  trace::TraceGeneratorOptions options;
  options.num_samples = 500;
  options.num_tables = 1;
  auto t = trace::TraceGenerator(spec).Generate(options);
  ASSERT_TRUE(t.ok());
  auto res = GraceMiner().Mine(t->tables[0], 20'000);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->lists.size(), 20u);
}

TEST(GraceTest, RejectsZeroItems) {
  trace::TableTrace table;
  table.AppendSample(std::vector<std::uint32_t>{});
  EXPECT_FALSE(GraceMiner().Mine(table, 0).ok());
}

}  // namespace
}  // namespace updlrm::cache
