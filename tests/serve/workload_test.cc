#include "serve/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "trace/generator.h"

namespace updlrm::serve {
namespace {

trace::Trace MakeTrace(std::size_t samples = 256) {
  trace::DatasetSpec spec;
  spec.name = "serve";
  spec.num_items = 500;
  spec.avg_reduction = 8.0;
  spec.num_hot_items = 64;
  spec.seed = 9;
  trace::TraceGeneratorOptions options;
  options.num_samples = samples;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  return std::move(t).value();
}

TEST(WorkloadTest, UniformArrivalsAreExactlySpaced) {
  const trace::Trace trace = MakeTrace();
  ArrivalOptions options;
  options.process = ArrivalProcess::kUniform;
  options.qps = 1.0e6;  // 1 request per microsecond
  auto requests = GenerateRequests(trace, 10, options);
  ASSERT_TRUE(requests.ok());
  ASSERT_EQ(requests->size(), 10u);
  for (std::size_t i = 0; i < requests->size(); ++i) {
    EXPECT_EQ((*requests)[i].id, i);
    EXPECT_EQ((*requests)[i].sample, i);
    EXPECT_DOUBLE_EQ((*requests)[i].arrival_ns,
                     static_cast<double>(i + 1) * 1e3);
  }
}

TEST(WorkloadTest, PoissonMeanRateMatchesQps) {
  const trace::Trace trace = MakeTrace();
  ArrivalOptions options;
  options.qps = 50'000.0;
  options.seed = 3;
  auto requests = GenerateRequests(trace, 0, options);  // all 256 samples
  ASSERT_TRUE(requests.ok());
  ASSERT_EQ(requests->size(), trace.num_samples());
  // Arrivals strictly increase.
  for (std::size_t i = 1; i < requests->size(); ++i) {
    EXPECT_GT((*requests)[i].arrival_ns, (*requests)[i - 1].arrival_ns);
  }
  // Empirical rate within 25% of the target at n = 256.
  const double span_s =
      requests->back().arrival_ns / kNanosPerSecond;
  const double rate = static_cast<double>(requests->size()) / span_s;
  EXPECT_NEAR(rate, options.qps, 0.25 * options.qps);
}

TEST(WorkloadTest, SeededStreamsAreDeterministic) {
  const trace::Trace trace = MakeTrace();
  ArrivalOptions options;
  options.qps = 20'000.0;
  options.seed = 11;
  auto a = GenerateRequests(trace, 64, options);
  auto b = GenerateRequests(trace, 64, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].arrival_ns, (*b)[i].arrival_ns) << i;
  }
  options.seed = 12;
  auto c = GenerateRequests(trace, 64, options);
  ASSERT_TRUE(c.ok());
  bool any_differ = false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    any_differ |= (*a)[i].arrival_ns != (*c)[i].arrival_ns;
  }
  EXPECT_TRUE(any_differ);
}

TEST(WorkloadTest, BurstyAlternatesFastAndSlowPhases) {
  const trace::Trace trace = MakeTrace();
  ArrivalOptions options;
  options.process = ArrivalProcess::kBursty;
  options.qps = 100'000.0;
  options.burst_factor = 8.0;
  options.burst_fraction = 0.1;
  options.seed = 5;
  auto requests = GenerateRequests(trace, 0, options);
  ASSERT_TRUE(requests.ok());
  // The long-run mean stays near qps while the gap distribution is
  // far more dispersed than Poisson: compare the coefficient of
  // variation of inter-arrival gaps (Poisson would give ~1).
  std::vector<double> gaps;
  for (std::size_t i = 1; i < requests->size(); ++i) {
    gaps.push_back((*requests)[i].arrival_ns -
                   (*requests)[i - 1].arrival_ns);
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double cov = std::sqrt(var) / mean;
  EXPECT_GT(cov, 1.3);  // overdispersed vs Poisson's ~1.0
  const double rate =
      static_cast<double>(requests->size()) /
      (requests->back().arrival_ns / kNanosPerSecond);
  EXPECT_NEAR(rate, options.qps, 0.35 * options.qps);
}

TEST(WorkloadTest, ValidatesInputs) {
  const trace::Trace trace = MakeTrace(8);
  ArrivalOptions options;
  EXPECT_FALSE(GenerateRequests(trace, 9, options).ok());  // > samples
  options.qps = 0.0;
  EXPECT_FALSE(GenerateRequests(trace, 4, options).ok());
  options.qps = 1000.0;
  options.process = ArrivalProcess::kBursty;
  options.burst_factor = 0.5;  // must exceed 1
  EXPECT_FALSE(GenerateRequests(trace, 4, options).ok());
  options.burst_factor = 4.0;
  options.burst_fraction = 0.5;  // factor * fraction >= 1
  EXPECT_FALSE(GenerateRequests(trace, 4, options).ok());
}

TEST(WorkloadTest, ParseArrivalProcessRoundTrips) {
  for (ArrivalProcess p : {ArrivalProcess::kPoisson,
                           ArrivalProcess::kUniform,
                           ArrivalProcess::kBursty}) {
    auto parsed = ParseArrivalProcess(ArrivalProcessName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseArrivalProcess("storm").ok());
}

}  // namespace
}  // namespace updlrm::serve
