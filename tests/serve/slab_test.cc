// The stable-pointer request slab (serve/slab.h): O(1) insert/erase,
// pointer stability across growth, slot recycling, and the batcher's
// allocation-free CutInto on top of it.
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.h"
#include "serve/slab.h"

namespace updlrm::serve {
namespace {

struct Payload {
  std::uint64_t id = 0;
  double stamp = 0.0;
};

TEST(RequestSlabTest, PointersStableAcrossGrowth) {
  RequestSlab<Payload> slab;
  std::vector<Payload*> ptrs;
  // Far past several block boundaries (first block is 64 slots).
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ptrs.push_back(slab.Insert(Payload{i, i * 0.5}));
  }
  EXPECT_EQ(slab.size(), 1000u);
  EXPECT_GE(slab.capacity(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(ptrs[i]->id, i);
    ASSERT_EQ(ptrs[i]->stamp, i * 0.5);
  }
}

TEST(RequestSlabTest, EraseRecyclesSlotsWithoutGrowth) {
  RequestSlab<Payload> slab;
  std::vector<Payload*> ptrs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ptrs.push_back(slab.Insert(Payload{i, 0.0}));
  }
  const std::size_t capacity = slab.capacity();
  std::set<Payload*> freed;
  for (std::size_t i = 0; i < 100; i += 2) {
    freed.insert(ptrs[i]);
    slab.Erase(ptrs[i]);
  }
  EXPECT_EQ(slab.size(), 50u);
  // Refill: every new element lands in a freed slot; capacity is flat.
  for (std::uint64_t i = 0; i < 50; ++i) {
    Payload* p = slab.Insert(Payload{1000 + i, 0.0});
    EXPECT_EQ(freed.count(p), 1u) << "insert did not recycle a slot";
  }
  EXPECT_EQ(slab.size(), 100u);
  EXPECT_EQ(slab.capacity(), capacity);
  // Survivors are untouched.
  for (std::size_t i = 1; i < 100; i += 2) {
    ASSERT_EQ(ptrs[i]->id, i);
  }
}

TEST(RequestSlabTest, EmplaceConstructsInPlace) {
  RequestSlab<Payload> slab;
  Payload* p = slab.Emplace(7u, 2.5);
  EXPECT_EQ(p->id, 7u);
  EXPECT_EQ(p->stamp, 2.5);
  EXPECT_EQ(slab.size(), 1u);
  slab.Erase(p);
  EXPECT_TRUE(slab.empty());
}

// CutInto appends to the caller's log — the serving loop records batch
// boundaries as offsets into one flat vector.
TEST(RequestSlabTest, BatcherCutIntoAppends) {
  BatcherOptions options;
  options.max_batch_size = 2;
  DynamicBatcher batcher(options);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Request r;
    r.id = i;
    r.sample = i;
    r.arrival_ns = static_cast<Nanos>(i);
    batcher.Offer(r, r.arrival_ns);
  }
  std::vector<QueuedRequest> log;
  std::vector<std::size_t> starts;
  while (!batcher.Idle()) {
    starts.push_back(log.size());
    batcher.CutInto(100.0, log);
  }
  starts.push_back(log.size());
  ASSERT_EQ(log.size(), 5u);
  ASSERT_EQ(starts.size(), 4u);  // 2 + 2 + 1
  EXPECT_EQ(starts[1] - starts[0], 2u);
  EXPECT_EQ(starts[2] - starts[1], 2u);
  EXPECT_EQ(starts[3] - starts[2], 1u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log[i].request.id, i) << "FIFO order across cuts";
  }
}

// Blocked requests keep their slab slot while parked and are admitted
// with admit_ns restarted at the cut instant.
TEST(RequestSlabTest, BlockedRequestsSurviveParking) {
  BatcherOptions options;
  options.max_batch_size = 2;
  options.queue_capacity = 2;
  options.policy = AdmissionPolicy::kBlock;
  DynamicBatcher batcher(options);
  Request r;
  for (std::uint64_t i = 0; i < 4; ++i) {
    r.id = i;
    r.arrival_ns = static_cast<Nanos>(i);
    const Admission a = batcher.Offer(r, r.arrival_ns);
    EXPECT_EQ(a, i < 2 ? Admission::kQueued : Admission::kBlocked) << i;
  }
  EXPECT_EQ(batcher.blocked_depth(), 2u);
  std::vector<QueuedRequest> batch = batcher.Cut(50.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 0u);
  EXPECT_EQ(batcher.blocked_depth(), 0u);
  EXPECT_EQ(batcher.queue_depth(), 2u);
  batch = batcher.Cut(60.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 2u);
  EXPECT_EQ(batch[0].admit_ns, 50.0) << "deadline restarts at admission";
}

}  // namespace
}  // namespace updlrm::serve
