// The serving simulator's half of the determinism contract (DESIGN.md
// §"Serving layer"): the whole request->batch->pipeline loop runs in
// simulated time, so host thread count must change nothing — arrival
// streams, batch cuts, executed schedules and every latency sample are
// compared byte-for-byte at 1, 2 and 4 threads. Lives in the
// tsan-labelled determinism_test binary (see tests/CMakeLists.txt).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "telemetry/monitor.h"
#include "trace/generator.h"
#include "trace/profiler.h"

namespace updlrm::serve {
namespace {

struct ServeRun {
  std::vector<Request> requests;
  ServeResult result;
};

ServeRun RunServeAt(std::uint32_t threads,
                    telemetry::FleetMonitor* monitor = nullptr) {
  dlrm::DlrmConfig config;
  config.num_tables = 2;
  config.rows_per_table = 600;
  config.embedding_dim = 8;
  config.dense_features = 5;
  config.bottom_hidden = {16};
  config.top_hidden = {16};
  config.seed = 31;

  trace::DatasetSpec spec;
  spec.name = "serve-det";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 31;
  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = 96;
  trace_options.num_tables = 2;
  trace_options.num_threads = threads;
  auto trace = trace::TraceGenerator(spec).Generate(trace_options);
  UPDLRM_CHECK(trace.ok());
  if (monitor != nullptr) {
    for (std::uint32_t t = 0; t < 2; ++t) {
      const auto freq =
          trace::ItemFrequencies(trace->tables[t], spec.num_items);
      monitor->AddTableBaseline(
          t, telemetry::BuildDriftBaseline(freq,
                                           trace::ItemsByFrequency(freq),
                                           monitor->options().drift));
    }
  }

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  engine_options.num_threads = threads;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, *trace,
                                           system->get(), engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

  ServeRun run;
  ArrivalOptions arrivals;
  arrivals.process = ArrivalProcess::kBursty;
  arrivals.qps = 200'000.0;
  arrivals.seed = 7;
  auto requests = GenerateRequests(*trace, 0, arrivals);
  UPDLRM_CHECK(requests.ok());
  run.requests = std::move(requests).value();

  ServeOptions options;
  options.batcher.max_batch_size = 16;
  options.batcher.max_queue_delay_ns = 5.0e4;
  options.batcher.queue_capacity = 24;
  options.batcher.policy = AdmissionPolicy::kShed;
  options.monitor = monitor;
  auto result = RunServeSimulation(**engine, run.requests, options);
  UPDLRM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  run.result = std::move(result).value();
  return run;
}

TEST(ServeDeterminismTest, SimulationBitExactAcrossThreadCounts) {
  const ServeRun serial = RunServeAt(1);
  ASSERT_GT(serial.result.num_batches, 0u);
  ASSERT_FALSE(serial.result.request_latency_ns.empty());
  for (std::uint32_t threads : {2u, 4u, 0u}) {
    const ServeRun run = RunServeAt(threads);
    // The arrival stream is seeded, independent of threads.
    ASSERT_EQ(run.requests.size(), serial.requests.size()) << threads;
    for (std::size_t i = 0; i < serial.requests.size(); ++i) {
      ASSERT_EQ(run.requests[i].arrival_ns, serial.requests[i].arrival_ns)
          << "request " << i << " at " << threads << " threads";
    }
    const ServeResult& a = run.result;
    const ServeResult& b = serial.result;
    EXPECT_EQ(a.offered, b.offered) << threads;
    EXPECT_EQ(a.completed, b.completed) << threads;
    EXPECT_EQ(a.shed, b.shed) << threads;
    EXPECT_EQ(a.num_batches, b.num_batches) << threads;
    EXPECT_EQ(a.max_queue_depth, b.max_queue_depth) << threads;
    EXPECT_EQ(a.makespan_ns, b.makespan_ns) << threads;
    EXPECT_EQ(a.utilization.host_busy_ns, b.utilization.host_busy_ns);
    EXPECT_EQ(a.utilization.dpu_busy_ns, b.utilization.dpu_busy_ns);
    ASSERT_EQ(a.request_latency_ns.size(), b.request_latency_ns.size());
    for (std::size_t i = 0; i < b.request_latency_ns.size(); ++i) {
      ASSERT_EQ(a.request_latency_ns[i], b.request_latency_ns[i])
          << "latency " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < b.schedule.size(); ++i) {
      ASSERT_EQ(a.schedule[i].s1_start_ns, b.schedule[i].s1_start_ns);
      ASSERT_EQ(a.schedule[i].s2_start_ns, b.schedule[i].s2_start_ns);
      ASSERT_EQ(a.schedule[i].s2_end_ns, b.schedule[i].s2_end_ns);
      ASSERT_EQ(a.schedule[i].s3_end_ns, b.schedule[i].s3_end_ns);
    }
    ASSERT_EQ(a.queue_depth.size(), b.queue_depth.size());
    for (std::size_t i = 0; i < b.queue_depth.size(); ++i) {
      ASSERT_EQ(a.queue_depth[i].t_ns, b.queue_depth[i].t_ns);
      ASSERT_EQ(a.queue_depth[i].depth, b.queue_depth[i].depth);
    }
    const auto buckets_a = a.latency.buckets();
    const auto buckets_b = b.latency.buckets();
    for (std::size_t i = 0; i < buckets_b.size(); ++i) {
      ASSERT_EQ(buckets_a[i], buckets_b[i]) << "bucket " << i;
    }
  }
}

// The fleet monitor's observation-only contract (DESIGN.md §"Fleet
// health monitoring"): attaching a FleetMonitor must not perturb the
// simulation, and the monitor's own output must be thread-invariant.
TEST(ServeDeterminismTest, MonitorIsObservationOnlyAndThreadInvariant) {
  const ServeRun bare = RunServeAt(1);
  std::string serial_jsonl;
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    telemetry::MonitorOptions monitor_options;
    monitor_options.window_ns = 5.0e4;
    monitor_options.drift.min_accesses = 1;
    telemetry::FleetMonitor monitor(monitor_options);
    const ServeRun run = RunServeAt(threads, &monitor);
    monitor.Finalize();
    const ServeResult& a = run.result;
    const ServeResult& b = bare.result;
    EXPECT_EQ(a.offered, b.offered) << threads;
    EXPECT_EQ(a.completed, b.completed) << threads;
    EXPECT_EQ(a.shed, b.shed) << threads;
    EXPECT_EQ(a.num_batches, b.num_batches) << threads;
    EXPECT_EQ(a.makespan_ns, b.makespan_ns) << threads;
    ASSERT_EQ(a.request_latency_ns.size(), b.request_latency_ns.size());
    for (std::size_t i = 0; i < b.request_latency_ns.size(); ++i) {
      ASSERT_EQ(a.request_latency_ns[i], b.request_latency_ns[i])
          << "latency " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < b.schedule.size(); ++i) {
      ASSERT_EQ(a.schedule[i].s1_start_ns, b.schedule[i].s1_start_ns);
      ASSERT_EQ(a.schedule[i].s3_end_ns, b.schedule[i].s3_end_ns);
    }
    // The monitor itself is fed from simulated time, so its JSONL
    // stream is byte-identical at every thread count.
    ASSERT_GT(monitor.windows().size(), 0u) << threads;
    const std::string jsonl = monitor.ToJsonl();
    if (threads == 1) {
      serial_jsonl = jsonl;
      EXPECT_TRUE(telemetry::ValidateHealthJsonl(jsonl, 1).ok());
    } else {
      EXPECT_EQ(jsonl, serial_jsonl) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace updlrm::serve
