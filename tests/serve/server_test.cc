// End-to-end serving simulation: open-loop arrivals -> batcher ->
// engine -> pipelined executor -> metrics, on a small timing-only
// system.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "trace/generator.h"

namespace updlrm::serve {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  std::unique_ptr<core::UpDlrmEngine> engine;
};

Fixture MakeFixture(std::size_t samples = 128) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = 31;

  trace::DatasetSpec spec;
  spec.name = "serve";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 31;
  trace::TraceGeneratorOptions options;
  options.num_samples = samples;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;  // timing-only: serving needs latencies only
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  auto engine =
      core::UpDlrmEngine::Create(nullptr, f.config, f.trace,
                                 f.system.get(), engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  f.engine = std::move(engine).value();
  return f;
}

std::vector<Request> Arrivals(const trace::Trace& trace, double qps,
                              ArrivalProcess process =
                                  ArrivalProcess::kPoisson,
                              std::uint64_t seed = 1) {
  ArrivalOptions options;
  options.process = process;
  options.qps = qps;
  options.seed = seed;
  auto requests = GenerateRequests(trace, 0, options);
  UPDLRM_CHECK(requests.ok());
  return std::move(requests).value();
}

TEST(ServerTest, LowLoadServesSingletonBatchesAtTheDeadline) {
  Fixture f = MakeFixture();
  // 100 QPS: 10 ms between requests, far above per-batch service time,
  // so every request is cut alone when its 1 ms batching delay expires.
  const auto requests =
      Arrivals(f.trace, 100.0, ArrivalProcess::kUniform);
  ServeOptions options;
  options.batcher.max_batch_size = 16;
  options.batcher.max_queue_delay_ns = 1.0e6;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->completed, requests.size());
  EXPECT_EQ(result->shed, 0u);
  EXPECT_EQ(result->num_batches, requests.size());
  EXPECT_DOUBLE_EQ(result->avg_batch_size, 1.0);
  ASSERT_EQ(result->request_latency_ns.size(), requests.size());
  for (std::size_t b = 0; b < result->num_batches; ++b) {
    // Latency = batching delay + the batch's own serial embedding time
    // (the executor is idle between such widely spaced batches).
    EXPECT_NEAR(result->request_latency_ns[b],
                1.0e6 + result->batch_stages[b].EmbeddingTotal(), 1.0)
        << b;
  }
  // At 1% duty cycle the DPUs are mostly idle.
  EXPECT_LT(result->utilization.DpuUtilization(), 0.25);
}

TEST(ServerTest, HighLoadFillsBatchesAndPipelines) {
  Fixture f = MakeFixture();
  // All 128 requests arrive within ~1.3 µs: total overload, so the
  // batcher always cuts full batches the moment a buffer pair frees.
  const auto requests =
      Arrivals(f.trace, 1.0e8, ArrivalProcess::kUniform);
  ServeOptions options;
  options.batcher.max_batch_size = 16;
  options.batcher.max_queue_delay_ns = 1.0e6;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 128u);
  EXPECT_EQ(result->shed, 0u);
  EXPECT_EQ(result->num_batches, 8u);  // 128 / 16, all full
  EXPECT_DOUBLE_EQ(result->avg_batch_size, 16.0);
  // Back-to-back batches: the executed makespan respects the true
  // lower bounds of any schedule for this batch sequence...
  Nanos host = 0.0, dpu = 0.0;
  for (const auto& s : result->batch_stages) {
    host += s.cpu_to_dpu + s.dpu_to_cpu + s.cpu_aggregate;
    dpu += s.dpu_lookup;
  }
  const Nanos fill = result->batch_stages.front().cpu_to_dpu;
  const Nanos drain = result->batch_stages.back().dpu_to_cpu +
                      result->batch_stages.back().cpu_aggregate;
  EXPECT_GE(result->makespan_ns, host);
  EXPECT_GE(result->makespan_ns, fill + dpu + drain);
  // ...and with full batches always ready, some resource is busy from
  // the last arrival on: makespan <= arrival span + serial work.
  Nanos serial = 0.0;
  for (const auto& s : result->batch_stages) serial += s.EmbeddingTotal();
  EXPECT_LE(result->makespan_ns,
            requests.back().arrival_ns + serial + 1.0);
  // The latency histogram agrees with the raw per-request record.
  EXPECT_EQ(result->latency.count(), result->completed);
  EXPECT_DOUBLE_EQ(result->latency.max_ns(),
                   *std::max_element(result->request_latency_ns.begin(),
                                     result->request_latency_ns.end()));
}

TEST(ServerTest, BoundedQueueShedsUnderOverload) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e8);  // 10 ns gaps
  ServeOptions options;
  options.batcher.max_batch_size = 8;
  options.batcher.max_queue_delay_ns = 1.0e5;
  options.batcher.queue_capacity = 8;
  options.batcher.policy = AdmissionPolicy::kShed;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->shed, 0u);
  EXPECT_EQ(result->completed + result->shed, result->offered);
  EXPECT_LE(result->max_queue_depth, 8u);
  ASSERT_EQ(result->request_latency_ns.size(), result->completed);
  // Admission control bounds the tail: nothing waits longer than the
  // queue delay plus the in-flight pipeline window.
  Nanos worst_batch = 0.0;
  for (const auto& s : result->batch_stages) {
    worst_batch = std::max(worst_batch, s.EmbeddingTotal());
  }
  EXPECT_LE(result->latency.max_ns(),
            options.batcher.max_queue_delay_ns + 3.0 * worst_batch);
}

TEST(ServerTest, BlockPolicyServesEveryRequest) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e8);
  ServeOptions options;
  options.batcher.max_batch_size = 8;
  options.batcher.max_queue_delay_ns = 1.0e5;
  options.batcher.queue_capacity = 8;
  options.batcher.policy = AdmissionPolicy::kBlock;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->shed, 0u);
  EXPECT_EQ(result->completed, result->offered);
}

TEST(ServerTest, RecordsQueueDepthTimeSeries) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  ServeOptions options;
  options.batcher.max_batch_size = 16;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queue_depth.size(), result->num_batches);
  for (std::size_t i = 1; i < result->queue_depth.size(); ++i) {
    EXPECT_GE(result->queue_depth[i].t_ns,
              result->queue_depth[i - 1].t_ns);
  }
  EXPECT_EQ(result->schedule.size(), result->num_batches);
  EXPECT_EQ(result->batch_stages.size(), result->num_batches);
}

TEST(ServerTest, MakeSloReportJudgesTailAgainstSlo) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  ServeOptions options;
  options.batcher.max_batch_size = 16;
  auto result = RunServeSimulation(*f.engine, requests, options);
  ASSERT_TRUE(result.ok());
  const SloReport strict =
      result->MakeSloReport(1.0e6, result->latency.PercentileNs(50.0));
  const SloReport loose =
      result->MakeSloReport(1.0e6, result->latency.max_ns() + 1.0);
  EXPECT_FALSE(strict.slo_met);  // p99 above the median SLO
  EXPECT_TRUE(loose.slo_met);
  EXPECT_GT(loose.achieved_qps, 0.0);
  EXPECT_EQ(loose.completed, result->completed);
}

TEST(ServerTest, RejectsRequestsOutsideTheTrace) {
  Fixture f = MakeFixture();
  const std::vector<Request> requests = {
      Request{0, f.trace.num_samples(), 0.0}};
  ServeOptions options;
  auto result = RunServeSimulation(*f.engine, requests, options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace updlrm::serve
