// Steady-state allocation accounting (the zero-alloc contract of
// DESIGN.md §"Host runtime"): once warm, the engine's per-batch host
// path and the request slab perform zero heap allocations. Global
// operator new/delete are replaced with counting wrappers, so this
// file must stay its own test binary (tests/CMakeLists.txt) — and the
// counters are compiled out under sanitizers, which interpose their
// own allocator.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.h"
#include "serve/slab.h"
#include "trace/generator.h"
#include "updlrm/engine.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UPDLRM_ALLOC_COUNTING 0
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#undef UPDLRM_ALLOC_COUNTING
#define UPDLRM_ALLOC_COUNTING 0
#endif
#endif
#ifndef UPDLRM_ALLOC_COUNTING
#define UPDLRM_ALLOC_COUNTING 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if UPDLRM_ALLOC_COUNTING

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded > 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // UPDLRM_ALLOC_COUNTING

namespace updlrm {
namespace {

// Counts heap allocations across `fn`. Keep gtest assertions *outside*
// the counted window — they allocate message buffers.
template <typename Fn>
std::uint64_t CountAllocs(Fn&& fn) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(AllocTest, EngineBatchesAreAllocationFreeOnceWarm) {
#if !UPDLRM_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  dlrm::DlrmConfig config;
  config.num_tables = 2;
  config.rows_per_table = 600;
  config.embedding_dim = 8;
  config.dense_features = 5;
  config.bottom_hidden = {16};
  config.top_hidden = {16};
  config.seed = 11;

  trace::DatasetSpec spec;
  spec.name = "alloc";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 11;
  trace::TraceGeneratorOptions trace_options;
  trace_options.num_samples = 128;
  trace_options.num_tables = 2;
  trace_options.num_threads = 1;
  auto trace = trace::TraceGenerator(spec).Generate(trace_options);
  ASSERT_TRUE(trace.ok());

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  engine_options.num_threads = 1;  // inline ParallelFor path
  engine_options.dedup = true;     // cover the dedup planner too
  auto engine = core::UpDlrmEngine::Create(nullptr, config, *trace,
                                           system->get(), engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<std::size_t> samples(16);
  // Warmup: size every reused scratch buffer to its high-water mark
  // (including the thread-local arena and dedup scratch). Covers the
  // same sample windows as the measured loop — scratch high-water
  // marks are data-dependent.
  Status status = Status::Ok();
  for (std::size_t b = 0; b < 8; ++b) {
    std::iota(samples.begin(), samples.end(), b * 16);
    auto r = (*engine)->RunSamples(samples, nullptr);
    if (!r.ok()) status = r.status();
  }
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Steady state: the per-batch host path must not touch the heap.
  Nanos checksum = 0.0;
  const std::uint64_t allocs = CountAllocs([&] {
    for (std::size_t b = 0; b < 8; ++b) {
      std::iota(samples.begin(), samples.end(), b * 16);
      auto r = (*engine)->RunSamples(samples, nullptr);
      if (r.ok()) checksum += r->total;
    }
  });
  EXPECT_EQ(allocs, 0u) << "per-batch heap allocations in steady state";
  EXPECT_GT(checksum, 0.0);
#endif
}

TEST(AllocTest, RequestSlabSteadyStateIsAllocationFree) {
#if !UPDLRM_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  serve::RequestSlab<serve::QueuedRequest> slab;
  std::vector<serve::QueuedRequest*> live;
  live.reserve(64);
  // Warm to the high-water depth once.
  for (std::uint64_t i = 0; i < 64; ++i) {
    live.push_back(slab.Insert(serve::QueuedRequest{}));
  }
  for (serve::QueuedRequest* p : live) slab.Erase(p);
  live.clear();

  const std::uint64_t allocs = CountAllocs([&] {
    // Churn at the warmed depth: every insert recycles a freed slot.
    for (int round = 0; round < 100; ++round) {
      for (std::uint64_t i = 0; i < 64; ++i) {
        live.push_back(slab.Insert(serve::QueuedRequest{}));
      }
      for (serve::QueuedRequest* p : live) slab.Erase(p);
      live.clear();
    }
  });
  EXPECT_EQ(allocs, 0u);
#endif
}

}  // namespace
}  // namespace updlrm
