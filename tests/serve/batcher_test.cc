#include "serve/batcher.h"

#include <gtest/gtest.h>

namespace updlrm::serve {
namespace {

Request Req(std::uint64_t id, Nanos arrival) {
  return Request{id, static_cast<std::size_t>(id), arrival};
}

TEST(BatcherTest, CutsWhenFull) {
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_queue_delay_ns = 1e9;  // effectively never
  DynamicBatcher batcher(options);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batcher.Offer(Req(i, 10.0 * i), 10.0 * i),
              Admission::kQueued);
    EXPECT_FALSE(batcher.ReadyToCut(10.0 * i));
  }
  EXPECT_EQ(batcher.Offer(Req(3, 30.0), 30.0), Admission::kQueued);
  EXPECT_TRUE(batcher.ReadyToCut(30.0));
  const auto batch = batcher.Cut(30.0);
  ASSERT_EQ(batch.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch[i].request.id, i);
  }
  EXPECT_TRUE(batcher.Idle());
}

TEST(BatcherTest, CutsAtTimeoutWithPartialBatch) {
  BatcherOptions options;
  options.max_batch_size = 64;
  options.max_queue_delay_ns = 100.0;
  DynamicBatcher batcher(options);
  batcher.Offer(Req(0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(batcher.NextDeadline(), 105.0);
  EXPECT_FALSE(batcher.ReadyToCut(104.9));
  EXPECT_TRUE(batcher.ReadyToCut(105.0));  // >= at the boundary
  const auto batch = batcher.Cut(105.0);
  EXPECT_EQ(batch.size(), 1u);
}

TEST(BatcherTest, ArrivalExactlyAtDeadlineJoinsTheClosingBatch) {
  // The boundary contract: the simulator offers arrivals timestamped
  // at the deadline before taking the deadline cut, so a request
  // arriving exactly at max_queue_delay rides along.
  BatcherOptions options;
  options.max_batch_size = 64;
  options.max_queue_delay_ns = 100.0;
  DynamicBatcher batcher(options);
  batcher.Offer(Req(0, 0.0), 0.0);
  batcher.Offer(Req(1, 100.0), 100.0);  // exactly at the deadline
  EXPECT_TRUE(batcher.ReadyToCut(100.0));
  const auto batch = batcher.Cut(100.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].request.id, 1u);
  EXPECT_DOUBLE_EQ(batch[1].admit_ns, 100.0);
}

TEST(BatcherTest, ShedPolicyCountsOverflow) {
  BatcherOptions options;
  options.max_batch_size = 8;
  options.queue_capacity = 2;
  options.policy = AdmissionPolicy::kShed;
  DynamicBatcher batcher(options);
  EXPECT_EQ(batcher.Offer(Req(0, 0.0), 0.0), Admission::kQueued);
  EXPECT_EQ(batcher.Offer(Req(1, 1.0), 1.0), Admission::kQueued);
  EXPECT_EQ(batcher.Offer(Req(2, 2.0), 2.0), Admission::kShed);
  EXPECT_EQ(batcher.Offer(Req(3, 3.0), 3.0), Admission::kShed);
  EXPECT_EQ(batcher.shed_count(), 2u);
  EXPECT_EQ(batcher.queue_depth(), 2u);
  // Space frees after a cut; later arrivals are admitted again.
  batcher.Cut(10.0);
  EXPECT_EQ(batcher.Offer(Req(4, 11.0), 11.0), Admission::kQueued);
  EXPECT_EQ(batcher.shed_count(), 2u);
}

TEST(BatcherTest, BlockPolicyParksAndPromotesInOrder) {
  BatcherOptions options;
  options.max_batch_size = 2;
  options.queue_capacity = 2;
  options.max_queue_delay_ns = 50.0;
  options.policy = AdmissionPolicy::kBlock;
  DynamicBatcher batcher(options);
  batcher.Offer(Req(0, 0.0), 0.0);
  batcher.Offer(Req(1, 1.0), 1.0);
  EXPECT_EQ(batcher.Offer(Req(2, 2.0), 2.0), Admission::kBlocked);
  EXPECT_EQ(batcher.Offer(Req(3, 3.0), 3.0), Admission::kBlocked);
  EXPECT_EQ(batcher.shed_count(), 0u);
  EXPECT_EQ(batcher.blocked_depth(), 2u);

  const auto batch = batcher.Cut(20.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 0u);
  // Both parked requests promoted into the freed space, admit = now:
  // their batching deadline restarts at admission.
  EXPECT_EQ(batcher.blocked_depth(), 0u);
  EXPECT_EQ(batcher.queue_depth(), 2u);
  EXPECT_DOUBLE_EQ(batcher.NextDeadline(), 70.0);
  const auto second = batcher.Cut(70.0);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].request.id, 2u);
  EXPECT_EQ(second[0].request.arrival_ns, 2.0);  // latency keeps arrival
  EXPECT_DOUBLE_EQ(second[0].admit_ns, 20.0);
}

TEST(BatcherTest, TracksMaxDepth) {
  BatcherOptions options;
  options.max_batch_size = 100;
  DynamicBatcher batcher(options);
  for (std::uint64_t i = 0; i < 7; ++i) {
    batcher.Offer(Req(i, static_cast<double>(i)), static_cast<double>(i));
  }
  batcher.Cut(10.0);
  EXPECT_EQ(batcher.max_queue_depth(), 7u);
  EXPECT_TRUE(batcher.Idle());
}

}  // namespace
}  // namespace updlrm::serve
