#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace updlrm::serve {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileNs(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min_ns(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_ns(), 0.0);
}

TEST(LatencyHistogramTest, TracksExactMinMaxMean) {
  LatencyHistogram h;
  h.Add(2'000.0);
  h.Add(10'000.0);
  h.Add(30'000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min_ns(), 2'000.0);
  EXPECT_DOUBLE_EQ(h.max_ns(), 30'000.0);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 14'000.0);
}

TEST(LatencyHistogramTest, BucketBoundsPartitionTheAxis) {
  // Adjacent buckets tile [0, inf): upper(i) == lower(i + 1), and every
  // added sample lands in a bucket whose [lo, hi) contains it.
  for (int i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperNs(i),
                     LatencyHistogram::BucketLowerNs(i + 1))
        << i;
  }
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = 500.0 * std::pow(10.0, 7.2 * rng.NextDouble());
    LatencyHistogram h;
    h.Add(v);
    int filled = -1;
    const auto buckets = h.buckets();
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (buckets[i] != 0) filled = i;
    }
    ASSERT_GE(filled, 0);
    EXPECT_GE(v, LatencyHistogram::BucketLowerNs(filled)) << v;
    EXPECT_LT(v, LatencyHistogram::BucketUpperNs(filled)) << v;
  }
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndClamped) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    h.Add(1e4 * (1.0 + 9.0 * rng.NextDouble()));  // [10 µs, 100 µs)
  }
  double prev = 0.0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.PercentileNs(p);
    EXPECT_GE(v, prev) << p;
    EXPECT_GE(v, h.min_ns());
    EXPECT_LE(v, h.max_ns());
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.PercentileNs(100.0), h.max_ns());
}

TEST(LatencyHistogramTest, PercentileAccuracyWithinBucketResolution) {
  // Uniform samples on [10 µs, 100 µs): p50 should land near 55 µs
  // within the ~26% relative error of a 10-buckets/decade histogram.
  LatencyHistogram h;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    h.Add(1e4 + 9e4 * rng.NextDouble());
  }
  EXPECT_NEAR(h.PercentileNs(50.0), 5.5e4, 0.26 * 5.5e4);
  EXPECT_NEAR(h.PercentileNs(99.0), 9.91e4, 0.26 * 9.91e4);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowAreCaptured) {
  LatencyHistogram h;
  h.Add(10.0);    // below kMinNs
  h.Add(5.0e10);  // 50 s, above the top decade
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
  // Percentiles stay inside the tracked extremes even in the open
  // overflow bucket.
  EXPECT_DOUBLE_EQ(h.PercentileNs(100.0), 5.0e10);
  EXPECT_GE(h.PercentileNs(1.0), 10.0);
}

TEST(StageUtilizationTest, ComputesBusyFractions) {
  StageUtilization u;
  u.host_busy_ns = 25.0;
  u.dpu_busy_ns = 80.0;
  u.makespan_ns = 100.0;
  EXPECT_DOUBLE_EQ(u.HostUtilization(), 0.25);
  EXPECT_DOUBLE_EQ(u.DpuUtilization(), 0.80);
  u.makespan_ns = 0.0;
  EXPECT_DOUBLE_EQ(u.HostUtilization(), 0.0);
}

TEST(SloReportTest, ToJsonHasStableKeysAndUnits) {
  SloReport report;
  report.offered_qps = 10000.0;
  report.achieved_qps = 9800.5;
  report.completed = 640;
  report.shed = 3;
  report.p50_ns = 120'000.0;
  report.p95_ns = 300'000.0;
  report.p99_ns = 450'000.0;
  report.mean_ns = 140'000.0;
  report.max_ns = 500'000.0;
  report.slo_ns = 400'000.0;
  report.slo_met = false;
  const std::string json = report.ToJson();
  EXPECT_EQ(json,
            "{\"offered_qps\": 10000, \"achieved_qps\": 9800.5, "
            "\"completed\": 640, \"shed\": 3, \"p50_us\": 120, "
            "\"p95_us\": 300, \"p99_us\": 450, \"mean_us\": 140, "
            "\"max_us\": 500, \"slo_us\": 400, \"slo_met\": false}");
}

TEST(MaxSustainableQpsTest, PicksHighestQualifyingRate) {
  const std::vector<RatePoint> points = {
      {5'000.0, 2.0e5, 0},
      {10'000.0, 3.0e5, 0},
      {15'000.0, 3.9e5, 0},
      {20'000.0, 3.5e5, 12},  // meets latency but sheds: disqualified
      {25'000.0, 9.0e5, 40},
  };
  EXPECT_DOUBLE_EQ(MaxSustainableQps(points, 4.0e5), 15'000.0);
  EXPECT_DOUBLE_EQ(MaxSustainableQps(points, 2.5e5), 5'000.0);
  EXPECT_DOUBLE_EQ(MaxSustainableQps(points, 1.0e5), 0.0);
  EXPECT_DOUBLE_EQ(MaxSustainableQps({}, 4.0e5), 0.0);
}

}  // namespace
}  // namespace updlrm::serve
