// The double-buffered executor, and the validation of the
// `EstimatePipelinedEmbedding` two-resource bound against the executed
// schedule (the bound used to be the only pipelining story; now it is
// checked against what the executor actually achieves).
#include "serve/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "updlrm/pipelining.h"

namespace updlrm::serve {
namespace {

core::StageBreakdown Batch(Nanos s1, Nanos s2, Nanos s3,
                           Nanos agg = 0.0) {
  core::StageBreakdown b;
  b.cpu_to_dpu = s1;
  b.dpu_lookup = s2;
  b.dpu_to_cpu = s3;
  b.cpu_aggregate = agg;
  return b;
}

Nanos Serial(std::span<const core::StageBreakdown> batches) {
  Nanos total = 0.0;
  for (const auto& b : batches) total += b.EmbeddingTotal();
  return total;
}

TEST(ExecutorTest, EmptySequenceHasZeroMakespan) {
  const auto exec = ExecutePipelined({});
  EXPECT_DOUBLE_EQ(exec.MakespanNs(), 0.0);
  EXPECT_TRUE(exec.batches().empty());
}

TEST(ExecutorTest, SingleBatchRunsSerially) {
  const std::vector<core::StageBreakdown> batches = {Batch(10, 50, 7, 3)};
  const auto exec = ExecutePipelined(batches);
  const auto& b = exec.batches()[0];
  EXPECT_DOUBLE_EQ(b.s1_start_ns, 0.0);
  EXPECT_DOUBLE_EQ(b.s2_start_ns, 10.0);
  EXPECT_DOUBLE_EQ(b.s3_start_ns, 60.0);
  EXPECT_DOUBLE_EQ(exec.MakespanNs(), 70.0);
  EXPECT_DOUBLE_EQ(exec.MakespanNs(), Serial(batches));
}

TEST(ExecutorTest, DoubleBufferOverlapsAdjacentBatches) {
  // DPU-bound homogeneous: stage 2 back-to-back after the first fill.
  const std::vector<core::StageBreakdown> batches(4, Batch(10, 80, 5, 5));
  const auto exec = ExecutePipelined(batches);
  for (std::size_t k = 0; k < batches.size(); ++k) {
    const auto& b = exec.batches()[k];
    EXPECT_DOUBLE_EQ(b.s2_start_ns, 10.0 + 80.0 * static_cast<double>(k))
        << k;
  }
  // fill(10) + 4 * 80 + drain(10) vs serial 400.
  EXPECT_DOUBLE_EQ(exec.MakespanNs(), 340.0);
  EXPECT_LT(exec.MakespanNs(), Serial(batches));
}

TEST(ExecutorTest, DepthLimitsInFlightBatches) {
  PipelinedExecutor exec(2);
  EXPECT_DOUBLE_EQ(exec.NextAdmitTime(), 0.0);
  exec.Submit(Batch(10, 100, 5), 0.0);
  EXPECT_DOUBLE_EQ(exec.NextAdmitTime(), 0.0);  // second buffer free
  exec.Submit(Batch(10, 100, 5), 0.0);
  // The third batch reuses batch 0's buffers: admit at its s2 end.
  EXPECT_DOUBLE_EQ(exec.NextAdmitTime(), 110.0);
  exec.Submit(Batch(10, 100, 5), 110.0);
  EXPECT_DOUBLE_EQ(exec.NextAdmitTime(), 210.0);
  exec.Drain();
  EXPECT_DOUBLE_EQ(exec.MakespanNs(), 315.0);
}

TEST(ExecutorTest, DepthOneSerializesAdmission) {
  const std::vector<core::StageBreakdown> batches(3, Batch(10, 80, 5, 5));
  const auto pipelined = ExecutePipelined(batches, 2);
  const auto serial_admit = ExecutePipelined(batches, 1);
  // With one buffer pair batch k+1's push waits for batch k's stage-2
  // end; the DPUs idle during every push.
  EXPECT_GT(serial_admit.MakespanNs(), pipelined.MakespanNs());
}

TEST(ExecutorTest, Stage1PriorityKeepsDpusFed) {
  // Host has a long stage 3; the next batch's push must still happen
  // at the tie instant so the DPUs never wait on a pull.
  const std::vector<core::StageBreakdown> batches(3, Batch(10, 60, 30, 0));
  const auto exec = ExecutePipelined(batches);
  // s2 chain: [10, 70), [70, 130), [130, 190): batch 2's push (cut at
  // batch 0's s2 end, t = 70) wins the tie against batch 0's pull.
  EXPECT_DOUBLE_EQ(exec.batches()[1].s2_start_ns, 70.0);
  EXPECT_DOUBLE_EQ(exec.batches()[2].s1_start_ns, 70.0);
  EXPECT_DOUBLE_EQ(exec.batches()[0].s3_start_ns, 80.0);
  EXPECT_DOUBLE_EQ(exec.batches()[2].s2_start_ns, 130.0);
}

// The acceptance contract between the estimator and the executor: for
// homogeneous DPU-bound batches (the regime the paper's workloads live
// in — stage 2 dominates), the two-resource estimate is a true lower
// bound of any schedule, and the executed double-buffered schedule
// lands within fill + drain of it.
TEST(ExecutorTest, ExecutedMakespanMatchesBoundForHomogeneousBatches) {
  for (const std::size_t n : {1u, 2u, 3u, 10u, 64u}) {
    const std::vector<core::StageBreakdown> batches(n,
                                                    Batch(12, 90, 6, 4));
    const auto estimate = core::EstimatePipelinedEmbedding(batches);
    const auto exec = ExecutePipelined(batches);
    const Nanos fill = batches.front().cpu_to_dpu;
    const Nanos drain = batches.back().dpu_to_cpu +
                        batches.back().cpu_aggregate;
    EXPECT_GE(exec.MakespanNs(), estimate.pipelined_ns - 1e-9) << n;
    EXPECT_LE(exec.MakespanNs(),
              estimate.pipelined_ns + fill + drain + 1e-9)
        << n;
    // DPU-bound homogeneous is exactly the bound: fill + Σ s2 + drain.
    EXPECT_NEAR(exec.MakespanNs(), estimate.pipelined_ns, 1e-9) << n;
  }
}

TEST(ExecutorTest, ExecutedRespectsTrueLowerBoundsOnMixedBatches) {
  const std::vector<core::StageBreakdown> batches = {
      Batch(10, 100, 5, 2), Batch(30, 10, 5, 1), Batch(20, 60, 15, 5),
      Batch(5, 40, 5, 0),   Batch(25, 80, 10, 3)};
  const auto exec = ExecutePipelined(batches);
  // Any schedule is bounded below by each serial resource and by the
  // fill + DPU chain + drain critical path.
  Nanos host = 0.0, dpu = 0.0;
  for (const auto& b : batches) {
    host += b.cpu_to_dpu + b.dpu_to_cpu + b.cpu_aggregate;
    dpu += b.dpu_lookup;
  }
  const Nanos fill = batches.front().cpu_to_dpu;
  const Nanos drain =
      batches.back().dpu_to_cpu + batches.back().cpu_aggregate;
  EXPECT_GE(exec.MakespanNs(), host);
  EXPECT_GE(exec.MakespanNs(), fill + dpu + drain);
  EXPECT_LE(exec.MakespanNs(), Serial(batches));
  // Resource accounting adds up.
  EXPECT_DOUBLE_EQ(exec.host_busy_ns(), host);
  EXPECT_DOUBLE_EQ(exec.dpu_busy_ns(), dpu);
}

}  // namespace
}  // namespace updlrm::serve
