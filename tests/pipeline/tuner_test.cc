// The data-flow auto-tuner: deterministic candidate search, calibrated
// winner selection, dominance over every static plan in full-calibration
// mode, and the per-shape memo.
#include "pipeline/tuner.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pipeline/runner.h"
#include "trace/generator.h"

namespace updlrm::pipeline {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  std::unique_ptr<core::UpDlrmEngine> engine;
};

Fixture MakeFixture(std::size_t samples = 96) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = 31;

  trace::DatasetSpec spec;
  spec.name = "tune";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 31;
  trace::TraceGeneratorOptions options;
  options.num_samples = samples;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  auto engine = core::UpDlrmEngine::Create(nullptr, f.config, f.trace,
                                           f.system.get(), engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  f.engine = std::move(engine).value();
  return f;
}

std::vector<serve::Request> Arrivals(const trace::Trace& trace,
                                     double qps) {
  serve::ArrivalOptions options;
  options.process = serve::ArrivalProcess::kPoisson;
  options.qps = qps;
  options.seed = 7;
  auto requests = serve::GenerateRequests(trace, 0, options);
  UPDLRM_CHECK(requests.ok());
  return std::move(requests).value();
}

serve::BatcherOptions Batcher() {
  serve::BatcherOptions options;
  options.max_batch_size = 16;
  options.max_queue_delay_ns = 1.0e6;
  return options;
}

TunerOptions SmallSearch() {
  TunerOptions options;
  options.space.max_depth = 3;
  options.calibrate_top_n = 3;
  return options;
}

TEST(TunerTest, PicksACalibratedWinnerDeterministically) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  DataFlowTuner a(SmallSearch());
  auto first = a.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  EXPECT_FALSE(first->candidates.empty());
  EXPECT_GT(first->best_p99_ns, 0.0);
  std::size_t calibrated = 0;
  for (const auto& c : first->candidates) {
    EXPECT_GT(c.predicted_ns, 0.0) << Name(c.plan);
    if (c.calibrated) {
      ++calibrated;
      EXPECT_GE(c.measured_p99_ns, 0.0);
    } else {
      EXPECT_LT(c.measured_p99_ns, 0.0);
    }
  }
  EXPECT_EQ(calibrated, 3u);

  // A fresh tuner over the same inputs lands on the same plan.
  DataFlowTuner b(SmallSearch());
  auto second = b.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->best, first->best);
  EXPECT_EQ(second->best_p99_ns, first->best_p99_ns);
}

TEST(TunerTest, MemoizesPerModelShapeAndBatchSize) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  DataFlowTuner tuner(SmallSearch());
  auto first = tuner.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(first.ok());
  auto again = tuner.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(again->best, first->best);
  // A different batch size is a different decision point.
  serve::BatcherOptions other = Batcher();
  other.max_batch_size = 4;
  auto smaller = tuner.Tune(*f.engine, requests, other);
  ASSERT_TRUE(smaller.ok());
  EXPECT_FALSE(smaller->from_cache);
}

TEST(TunerTest, FullCalibrationDominatesEveryStaticPlan) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  TunerOptions options = SmallSearch();
  options.calibrate_top_n = 0;  // calibrate everything
  DataFlowTuner tuner(options);
  auto tuned = tuner.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(tuned.ok());
  for (const auto& c : tuned->candidates) {
    ASSERT_TRUE(c.calibrated) << Name(c.plan);
    EXPECT_LE(tuned->best_p99_ns, c.measured_p99_ns) << Name(c.plan);
  }
  // The winner's calibration replays identically outside the tuner.
  DataFlowServeOptions serve_options;
  serve_options.batcher = Batcher();
  serve_options.plan = tuned->best;
  auto replay = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      serve_options);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->latency.PercentileNs(99.0), tuned->best_p99_ns);
}

TEST(TunerTest, RespectsGpuAvailability) {
  Fixture f = MakeFixture();
  const auto requests = Arrivals(f.trace, 1.0e6);
  TunerOptions options = SmallSearch();
  options.gpu_available = false;
  DataFlowTuner tuner(options);
  auto tuned = tuner.Tune(*f.engine, requests, Batcher());
  ASSERT_TRUE(tuned.ok());
  for (const auto& c : tuned->candidates) {
    EXPECT_EQ(c.plan.bottom, Backend::kCpu) << Name(c.plan);
    EXPECT_EQ(c.plan.top, Backend::kCpu) << Name(c.plan);
  }
}

TEST(TunerTest, RejectsAnEmptyStream) {
  Fixture f = MakeFixture();
  DataFlowTuner tuner(SmallSearch());
  auto tuned = tuner.Tune(*f.engine, {}, Batcher());
  EXPECT_FALSE(tuned.ok());
}

}  // namespace
}  // namespace updlrm::pipeline
