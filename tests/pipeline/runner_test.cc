// Full-path serving simulation: arrivals -> batcher -> engine embedding
// run -> data-flow executor -> CTR outputs + tail metrics, with the
// check-mode audits riding along.
#include "pipeline/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/dataflow_audit.h"
#include "trace/generator.h"

namespace updlrm::pipeline {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  std::unique_ptr<core::UpDlrmEngine> engine;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(bool functional, std::size_t samples = 96) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = 31;
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  trace::DatasetSpec spec;
  spec.name = "flow";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 31;
  trace::TraceGeneratorOptions options;
  options.num_samples = samples;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  auto engine = core::UpDlrmEngine::Create(f.model.get(), f.config,
                                           f.trace, f.system.get(),
                                           engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  f.engine = std::move(engine).value();
  f.dense = dlrm::DenseInputs::Generate(samples, 5, 32);
  return f;
}

std::vector<serve::Request> Arrivals(const trace::Trace& trace, double qps,
                                     std::uint64_t seed = 1) {
  serve::ArrivalOptions options;
  options.process = serve::ArrivalProcess::kPoisson;
  options.qps = qps;
  options.seed = seed;
  auto requests = serve::GenerateRequests(trace, 0, options);
  UPDLRM_CHECK(requests.ok());
  return std::move(requests).value();
}

DataFlowServeOptions BaseOptions() {
  DataFlowServeOptions options;
  options.batcher.max_batch_size = 16;
  options.batcher.max_queue_delay_ns = 1.0e6;
  options.plan.depth = 2;
  options.plan.bottom_split = 1;
  return options;
}

TEST(RunnerTest, ServesEveryRequestWithFullPathLatencies) {
  Fixture f = MakeFixture(/*functional=*/false);
  const auto requests = Arrivals(f.trace, 1.0e6);
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      BaseOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->completed, requests.size());
  EXPECT_EQ(result->shed, 0u);
  EXPECT_TRUE(result->ctr.empty());  // timing-only engine
  ASSERT_EQ(result->schedule.size(), result->num_batches);
  // Full-path completion: every batch's done instant is its top end,
  // strictly after the embedding pull that the embedding-only server
  // would report.
  for (const auto& b : result->schedule) {
    EXPECT_GT(b.done_ns, b.s3_end_ns);
    EXPECT_DOUBLE_EQ(b.done_ns, b.top_end_ns);
  }
  EXPECT_GT(result->utilization.host_mlp_busy_ns, 0.0);
  EXPECT_DOUBLE_EQ(result->utilization.gpu_busy_ns, 0.0);
  EXPECT_EQ(result->latency.count(), result->completed);
}

TEST(RunnerTest, CtrMatchesTheReferenceModelExactly) {
  Fixture f = MakeFixture(/*functional=*/true);
  const auto requests = Arrivals(f.trace, 1.0e6);
  auto result = RunDataFlowSimulation(*f.engine, requests, &f.dense,
                                      BaseOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->ctr.size(), requests.size());
  // Nothing shed and the batcher is FIFO, so CTR order is request
  // order. Reference: the model's fixed-point embedding forward.
  std::vector<float> pooled(
      static_cast<std::size_t>(f.config.num_tables) *
      f.config.embedding_dim);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t s = requests[i].sample;
    f.model->PooledEmbeddingsFixed(f.trace, s, pooled);
    const float expected =
        f.model->ForwardSample(f.dense.Sample(s), pooled);
    ASSERT_EQ(result->ctr[i], expected) << "request " << i;
  }
}

TEST(RunnerTest, CtrBitExactAcrossThreadCounts) {
  Fixture f = MakeFixture(/*functional=*/true);
  const auto requests = Arrivals(f.trace, 1.0e6);
  DataFlowServeOptions options = BaseOptions();
  options.num_threads = 1;
  auto serial = RunDataFlowSimulation(*f.engine, requests, &f.dense,
                                      options);
  ASSERT_TRUE(serial.ok());
  for (const std::uint32_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto run = RunDataFlowSimulation(*f.engine, requests, &f.dense,
                                     options);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->ctr, serial->ctr) << threads << " threads";
    ASSERT_EQ(run->request_latency_ns, serial->request_latency_ns)
        << threads << " threads";
    EXPECT_EQ(run->makespan_ns, serial->makespan_ns);
  }
}

TEST(RunnerTest, LegalPlanPassesEveryAudit) {
  Fixture f = MakeFixture(/*functional=*/false);
  const auto requests = Arrivals(f.trace, 1.0e6);
  check::CheckReport report;
  DataFlowServeOptions options = BaseOptions();
  options.audit = &report;
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(RunnerTest, ShapeAuditFlagsAnOversizedBottomSplit) {
  Fixture f = MakeFixture(/*functional=*/false);
  const auto requests = Arrivals(f.trace, 1.0e6);
  check::CheckReport report;
  DataFlowServeOptions options = BaseOptions();
  options.plan.bottom_split = 99;  // beyond the 2-layer bottom stack
  options.audit = &report;
  // The run itself survives (costs clamp the split), but the audit
  // records the illegal plan shape.
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(report.count(check::Rule::kDataFlowShape), 1u);
  EXPECT_EQ(report.count(check::Rule::kStageOrdering), 0u);
}

TEST(RunnerTest, ShapeAuditFlagsGpuPlansWithoutAGpu) {
  Fixture f = MakeFixture(/*functional=*/false);
  const auto requests = Arrivals(f.trace, 1.0e6);
  check::CheckReport report;
  DataFlowServeOptions options = BaseOptions();
  options.plan.top = Backend::kGpu;
  options.gpu_available = false;
  options.audit = &report;
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(report.count(check::Rule::kDataFlowShape), 1u);
}

TEST(RunnerTest, GpuPlanAccountsGpuBusyTime) {
  Fixture f = MakeFixture(/*functional=*/false);
  const auto requests = Arrivals(f.trace, 1.0e6);
  DataFlowServeOptions options = BaseOptions();
  options.plan.bottom = Backend::kGpu;
  options.plan.bottom_split = 0;
  options.plan.top = Backend::kGpu;
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->utilization.gpu_busy_ns, 0.0);
  // No CPU-placed dense stages: the host's MLP time is zero.
  EXPECT_DOUBLE_EQ(result->utilization.host_mlp_busy_ns, 0.0);
}

TEST(RunnerTest, RejectsRequestsOutsideTheTrace) {
  Fixture f = MakeFixture(/*functional=*/false);
  const std::vector<serve::Request> requests = {
      serve::Request{0, f.trace.num_samples(), 0.0}};
  auto result = RunDataFlowSimulation(*f.engine, requests, nullptr,
                                      BaseOptions());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace updlrm::pipeline
