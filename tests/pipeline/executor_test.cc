// The full-path data-flow executor: deterministic host scheduling
// around the embedding stages, GPU offload FIFO, depth-bounded
// admission, and the stage-ordering invariants under random load.
#include "pipeline/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/dataflow_audit.h"
#include "check/report.h"
#include "common/rng.h"

namespace updlrm::pipeline {
namespace {

BatchTaskCosts CpuCosts() {
  BatchTaskCosts c;
  c.emb.cpu_to_dpu = 100.0;
  c.emb.dpu_lookup = 200.0;
  c.emb.dpu_to_cpu = 50.0;
  c.emb.cpu_aggregate = 50.0;
  c.bottom_pre = 0.0;
  c.bottom_post = 300.0;
  c.interact = 40.0;
  c.top_mlp = 60.0;
  return c;
}

TEST(DataFlowExecutorTest, SingleBatchCpuFlowSchedulesInOrder) {
  DataFlowPlan plan;
  plan.depth = 1;
  DataFlowExecutor ex(plan);
  ex.Submit(CpuCosts(), 0.0);
  ex.Drain();
  const ExecutedFlowBatch& b = ex.batches().front();
  // S1 [0,100] then S2 [100,300]; the host fills the DPU window with
  // the bottom stack [100,400]; S3 waits for both the host and the
  // lookup [400,500]; top closes the batch [500,600].
  EXPECT_DOUBLE_EQ(b.s1_start_ns, 0.0);
  EXPECT_DOUBLE_EQ(b.s1_end_ns, 100.0);
  EXPECT_DOUBLE_EQ(b.s2_start_ns, 100.0);
  EXPECT_DOUBLE_EQ(b.s2_end_ns, 300.0);
  EXPECT_DOUBLE_EQ(b.bpost_start_ns, 100.0);
  EXPECT_DOUBLE_EQ(b.bpost_end_ns, 400.0);
  EXPECT_DOUBLE_EQ(b.bottom_done_ns, 400.0);
  EXPECT_DOUBLE_EQ(b.s3_start_ns, 400.0);
  EXPECT_DOUBLE_EQ(b.s3_end_ns, 500.0);
  EXPECT_DOUBLE_EQ(b.top_start_ns, 500.0);
  EXPECT_DOUBLE_EQ(b.top_end_ns, 600.0);
  EXPECT_DOUBLE_EQ(b.done_ns, 600.0);
  EXPECT_DOUBLE_EQ(ex.MakespanNs(), 600.0);
  EXPECT_DOUBLE_EQ(ex.host_busy_ns(), 100.0 + 300.0 + 100.0 + 100.0);
  EXPECT_DOUBLE_EQ(ex.host_mlp_busy_ns(), 300.0 + 100.0);
  EXPECT_DOUBLE_EQ(ex.dpu_busy_ns(), 200.0);
  EXPECT_DOUBLE_EQ(ex.gpu_busy_ns(), 0.0);
}

TEST(DataFlowExecutorTest, DepthBoundsAdmission) {
  DataFlowPlan d1;
  d1.depth = 1;
  DataFlowExecutor serial(d1);
  EXPECT_DOUBLE_EQ(serial.NextAdmitTime(), 0.0);
  serial.Submit(CpuCosts(), 0.0);
  // One buffer pair: the next cut waits for this batch's stage 2.
  EXPECT_DOUBLE_EQ(serial.NextAdmitTime(),
                   serial.batches().front().s2_end_ns);

  DataFlowPlan d2;
  d2.depth = 2;
  DataFlowExecutor doubled(d2);
  doubled.Submit(CpuCosts(), 0.0);
  // Double buffering admits immediately after the previous cut.
  EXPECT_DOUBLE_EQ(doubled.NextAdmitTime(), 0.0);
  doubled.Submit(CpuCosts(), 10.0);
  EXPECT_DOUBLE_EQ(doubled.NextAdmitTime(),
                   std::max(10.0, doubled.batches()[0].s2_end_ns));
}

TEST(DataFlowExecutorTest, BottomOverlapsTheNextBatchWindow) {
  // Depth 2: batch 1's bottom stack should run while batch 0's lookup
  // still owns the DPUs — the asymmetric overlap the plans exist for.
  DataFlowPlan plan;
  plan.depth = 2;
  DataFlowExecutor ex(plan);
  BatchTaskCosts c = CpuCosts();
  c.bottom_post = 50.0;  // cheap enough to fit inside the DPU window
  ex.Submit(c, 0.0);
  ex.Submit(c, 100.0);
  ex.Drain();
  const auto& b0 = ex.batches()[0];
  const auto& b1 = ex.batches()[1];
  // Batch 1's S1 takes the host right at its cut (S1 outranks dense
  // work), then its bottom stack starts inside batch 0's S2 window.
  EXPECT_DOUBLE_EQ(b1.s1_start_ns, 100.0);
  EXPECT_LT(b1.bpost_start_ns, b0.s2_end_ns);
  // Batch order is preserved on the DPU resource.
  EXPECT_GE(b1.s2_start_ns, b0.s2_end_ns);
  // Both batches complete, in order.
  EXPECT_GE(b1.done_ns, b0.done_ns);
  EXPECT_DOUBLE_EQ(ex.MakespanNs(), b1.done_ns);
}

TEST(DataFlowExecutorTest, StageThreePreemptsQueuedBottomWork) {
  // S3 outranks bottom tasks at equal start instants: once the host
  // frees at the lookup's end, the pull runs before further dense work.
  BatchTaskCosts c = CpuCosts();
  c.bottom_pre = 120.0;
  c.bottom_post = 180.0;
  DataFlowPlan plan;
  plan.depth = 1;
  plan.bottom_split = 1;
  DataFlowExecutor ex(plan);
  ex.Submit(c, 0.0);
  ex.Drain();
  const auto& b = ex.batches().front();
  // Host: S1 [0,100], BPRE [100,220], BPOST [220,400]; S3 becomes
  // ready at 300 mid-BPOST and must wait (non-preemptive) -> [400,500].
  EXPECT_DOUBLE_EQ(b.bpre_start_ns, 100.0);
  EXPECT_DOUBLE_EQ(b.bpre_end_ns, 220.0);
  EXPECT_DOUBLE_EQ(b.bpost_end_ns, 400.0);
  EXPECT_DOUBLE_EQ(b.s3_start_ns, 400.0);
  EXPECT_DOUBLE_EQ(b.top_start_ns, 500.0);
}

TEST(DataFlowExecutorTest, GpuBottomRunsOffHostAndInFifoOrder) {
  BatchTaskCosts c = CpuCosts();
  c.bottom_pre = 0.0;
  c.bottom_post = 0.0;
  c.bottom_gpu = 500.0;
  DataFlowPlan plan;
  plan.depth = 2;
  plan.bottom = Backend::kGpu;
  DataFlowExecutor ex(plan);
  ex.Submit(c, 0.0);
  ex.Submit(c, 100.0);
  ex.Drain();
  const auto& b0 = ex.batches()[0];
  const auto& b1 = ex.batches()[1];
  // The offload starts at each batch's cut, FIFO on the GPU.
  EXPECT_DOUBLE_EQ(b0.bpre_start_ns, 0.0);
  EXPECT_DOUBLE_EQ(b0.bottom_done_ns, 500.0);
  EXPECT_DOUBLE_EQ(b1.bpre_start_ns, 500.0);  // queued behind batch 0
  EXPECT_DOUBLE_EQ(b1.bottom_done_ns, 1000.0);
  EXPECT_DOUBLE_EQ(ex.gpu_busy_ns(), 1000.0);
  // The host never ran dense bottom work; its MLP time is the tops.
  EXPECT_DOUBLE_EQ(ex.host_mlp_busy_ns(),
                   2.0 * (c.interact + c.top_mlp));
  // Tops wait for the (slow) GPU bottom.
  EXPECT_GE(b0.top_start_ns, b0.bottom_done_ns);
  EXPECT_GE(b1.top_start_ns, b1.bottom_done_ns);
}

TEST(DataFlowExecutorTest, GpuTopWaitsForPullAndBottom) {
  BatchTaskCosts c = CpuCosts();
  c.top_gpu = 250.0;
  DataFlowPlan plan;
  plan.depth = 2;
  plan.top = Backend::kGpu;
  DataFlowExecutor ex(plan);
  ex.Submit(c, 0.0);
  ex.Submit(c, 100.0);
  ex.Drain();
  for (const auto& b : ex.batches()) {
    EXPECT_GE(b.top_start_ns, b.s3_end_ns);
    EXPECT_GE(b.top_start_ns, b.bottom_done_ns);
    EXPECT_DOUBLE_EQ(b.top_end_ns - b.top_start_ns, 250.0);
  }
  // FIFO on the GPU resource.
  EXPECT_GE(ex.batches()[1].top_start_ns, ex.batches()[0].top_end_ns);
  EXPECT_DOUBLE_EQ(ex.gpu_busy_ns(), 500.0);
}

// Randomized loads across every backend mix: the executed schedule must
// satisfy the stage-ordering audit and never double-book a resource.
TEST(DataFlowExecutorTest, RandomLoadsKeepOrderingAndResourceInvariants) {
  Rng rng(99);
  const Backend kinds[] = {Backend::kCpu, Backend::kGpu};
  for (const Backend bottom : kinds) {
    for (const Backend top : kinds) {
      for (const std::uint32_t depth : {1u, 2u, 3u}) {
        DataFlowPlan plan;
        plan.depth = depth;
        plan.bottom_split = 1;
        plan.bottom = bottom;
        plan.top = top;
        DataFlowExecutor ex(plan);
        Nanos cut = 0.0;
        for (int b = 0; b < 40; ++b) {
          BatchTaskCosts c;
          c.emb.cpu_to_dpu = 10.0 + 90.0 * rng.NextDouble();
          c.emb.dpu_lookup = 50.0 + 300.0 * rng.NextDouble();
          c.emb.dpu_to_cpu = 5.0 + 50.0 * rng.NextDouble();
          c.emb.cpu_aggregate = 5.0 + 50.0 * rng.NextDouble();
          if (bottom == Backend::kCpu) {
            c.bottom_pre = 100.0 * rng.NextDouble();
            c.bottom_post = 100.0 * rng.NextDouble();
          } else {
            c.bottom_gpu = 50.0 + 200.0 * rng.NextDouble();
          }
          c.interact = 20.0 * rng.NextDouble();
          c.top_mlp = 50.0 * rng.NextDouble();
          if (top == Backend::kGpu) {
            c.top_gpu = 50.0 + 200.0 * rng.NextDouble();
          }
          cut = std::max(cut + 100.0 * rng.NextDouble(),
                         ex.NextAdmitTime());
          ex.Submit(c, cut);
        }
        ex.Drain();

        check::CheckReport report;
        std::vector<std::pair<Nanos, Nanos>> host, dpu, gpu;
        for (std::size_t i = 0; i < ex.batches().size(); ++i) {
          const ExecutedFlowBatch& b = ex.batches()[i];
          check::StageInstants t;
          t.cut_ns = b.cut_ns;
          t.bpre_start_ns = b.bpre_start_ns;
          t.bpre_end_ns = b.bpre_end_ns;
          t.s1_start_ns = b.s1_start_ns;
          t.s1_end_ns = b.s1_end_ns;
          t.s2_start_ns = b.s2_start_ns;
          t.s2_end_ns = b.s2_end_ns;
          t.s3_start_ns = b.s3_start_ns;
          t.s3_end_ns = b.s3_end_ns;
          t.bottom_done_ns = b.bottom_done_ns;
          t.top_start_ns = b.top_start_ns;
          t.top_end_ns = b.top_end_ns;
          check::AuditStageOrdering(i, t, &report);

          host.emplace_back(b.s1_start_ns, b.s1_end_ns);
          host.emplace_back(b.s3_start_ns, b.s3_end_ns);
          dpu.emplace_back(b.s2_start_ns, b.s2_end_ns);
          if (bottom == Backend::kCpu) {
            host.emplace_back(b.bpre_start_ns, b.bpre_end_ns);
            host.emplace_back(b.bpost_start_ns, b.bpost_end_ns);
          } else {
            gpu.emplace_back(b.bpre_start_ns, b.bpre_end_ns);
          }
          if (top == Backend::kCpu) {
            host.emplace_back(b.top_start_ns, b.top_end_ns);
          } else {
            gpu.emplace_back(b.top_start_ns, b.top_end_ns);
          }
        }
        EXPECT_TRUE(report.clean())
            << Name(plan) << ": " << report.ToString();
        for (auto* intervals : {&host, &dpu, &gpu}) {
          std::sort(intervals->begin(), intervals->end());
          for (std::size_t i = 1; i < intervals->size(); ++i) {
            EXPECT_LE((*intervals)[i - 1].second,
                      (*intervals)[i].first + 1e-6)
                << Name(plan) << ": resource double-booked";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace updlrm::pipeline
