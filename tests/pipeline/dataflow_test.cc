// Plan enumeration, per-batch task pricing, and the analytic
// steady-state predictor.
#include "pipeline/dataflow.h"

#include <gtest/gtest.h>

#include <set>

#include "check/dataflow_audit.h"

namespace updlrm::pipeline {
namespace {

dlrm::DlrmConfig SmallConfig() {
  dlrm::DlrmConfig config;
  config.num_tables = 2;
  config.rows_per_table = 600;
  config.embedding_dim = 8;
  config.dense_features = 5;
  config.bottom_hidden = {16};  // 2 bottom layers
  config.top_hidden = {16};
  return config;
}

core::BatchResult ProbeBatch() {
  core::BatchResult batch;
  batch.stages.cpu_to_dpu = 10'000.0;
  batch.stages.dpu_lookup = 40'000.0;
  batch.stages.dpu_to_cpu = 8'000.0;
  batch.stages.cpu_aggregate = 6'000.0;
  return batch;
}

TEST(EnumerateDataFlowsTest, CoversTheSpaceInDeterministicOrder) {
  DataFlowSpace space;
  space.max_depth = 2;
  space.bottom_layers = 2;
  space.allow_gpu = true;
  const auto plans = EnumerateDataFlows(space);
  // Per depth: split 0 has all 4 backend mixes; splits 1 and 2 only the
  // CPU-bottom pair -> 4 + 2 + 2 = 8 plans per depth.
  ASSERT_EQ(plans.size(), 16u);
  EXPECT_EQ(Name(plans[0]), "d1.split0.cpu-cpu");
  EXPECT_EQ(Name(plans[1]), "d1.split0.cpu-gpu");
  EXPECT_EQ(Name(plans[2]), "d1.split0.gpu-cpu");
  EXPECT_EQ(Name(plans[3]), "d1.split0.gpu-gpu");
  EXPECT_EQ(Name(plans[4]), "d1.split1.cpu-cpu");
  EXPECT_EQ(Name(plans.back()), "d2.split2.cpu-gpu");
  // Names are unique (the enumeration never repeats a plan).
  std::set<std::string> names;
  for (const auto& p : plans) names.insert(Name(p));
  EXPECT_EQ(names.size(), plans.size());
  // GPU-bottom plans always carry split 0.
  for (const auto& p : plans) {
    if (p.bottom == Backend::kGpu) EXPECT_EQ(p.bottom_split, 0u);
  }
}

TEST(EnumerateDataFlowsTest, GpuPlacementsGatedOnAvailability) {
  DataFlowSpace space;
  space.max_depth = 3;
  space.bottom_layers = 2;
  space.allow_gpu = false;
  const auto plans = EnumerateDataFlows(space);
  ASSERT_EQ(plans.size(), 9u);  // 3 depths x 3 splits, CPU-CPU only
  for (const auto& p : plans) {
    EXPECT_EQ(p.bottom, Backend::kCpu);
    EXPECT_EQ(p.top, Backend::kCpu);
  }
}

TEST(EnumerateDataFlowsTest, DepthClampsToTheAuditBound) {
  DataFlowSpace space;
  space.max_depth = 99;
  space.bottom_layers = 1;
  space.allow_gpu = false;
  const auto plans = EnumerateDataFlows(space);
  for (const auto& p : plans) {
    EXPECT_LE(p.depth, check::kMaxPipelineDepth);
    EXPECT_GE(p.depth, 1u);
  }
  EXPECT_EQ(plans.size(), check::kMaxPipelineDepth * 2u);
}

TEST(ComputeBatchTaskCostsTest, SplitPartitionsTheBottomStack) {
  const auto config = SmallConfig();
  const host::CpuTimingModel cpu;
  const host::GpuTimingModel gpu;
  const auto batch = ProbeBatch();

  DataFlowPlan whole;  // split 0: everything in the post task
  whole.bottom_split = 0;
  const auto c0 = ComputeBatchTaskCosts(config, cpu, gpu, batch, 64, whole);
  EXPECT_EQ(c0.bottom_pre, 0.0);
  EXPECT_GT(c0.bottom_post, 0.0);
  EXPECT_EQ(c0.bottom_gpu, 0.0);
  EXPECT_EQ(c0.top_gpu, 0.0);
  EXPECT_GT(c0.interact, 0.0);
  EXPECT_GT(c0.top_mlp, 0.0);

  DataFlowPlan split;
  split.bottom_split = 1;
  const auto c1 = ComputeBatchTaskCosts(config, cpu, gpu, batch, 64, split);
  EXPECT_GT(c1.bottom_pre, 0.0);
  EXPECT_GT(c1.bottom_post, 0.0);
  // The split moves work between the halves without changing the total
  // (MlpTime is linear in FLOPs).
  EXPECT_NEAR(c1.bottom_host(), c0.bottom_host(),
              1e-9 * c0.bottom_host());
  // Embedding stage times pass through untouched.
  EXPECT_EQ(c1.emb.dpu_lookup, batch.stages.dpu_lookup);
}

TEST(ComputeBatchTaskCostsTest, GpuOffloadCarriesTheSyncTax) {
  const auto config = SmallConfig();
  const host::CpuTimingModel cpu;
  const host::GpuTimingModel gpu;
  const auto batch = ProbeBatch();

  DataFlowPlan plan;
  plan.bottom = Backend::kGpu;
  plan.top = Backend::kGpu;
  const auto c = ComputeBatchTaskCosts(config, cpu, gpu, batch, 64, plan);
  EXPECT_EQ(c.bottom_pre, 0.0);
  EXPECT_EQ(c.bottom_post, 0.0);
  EXPECT_GE(c.bottom_gpu, gpu.BatchSyncOverhead());
  EXPECT_GE(c.top_gpu, gpu.BatchSyncOverhead());
  // At batch 64 the fixed per-batch overheads dwarf the host's dense
  // time for this small model — the paper's hybrid-slower-than-CPU
  // asymmetry the tuner must navigate.
  EXPECT_GT(c.bottom_gpu, c.bottom_host());
  EXPECT_GT(c.top_gpu, c.top_host());
}

TEST(PredictFlowTest, BoundsAndDepthMonotonicity) {
  const auto config = SmallConfig();
  const host::CpuTimingModel cpu;
  const host::GpuTimingModel gpu;
  const auto batch = ProbeBatch();

  DataFlowPlan d1;
  d1.depth = 1;
  DataFlowPlan d2;
  d2.depth = 2;
  const auto c1 = ComputeBatchTaskCosts(config, cpu, gpu, batch, 64, d1);
  const auto c2 = ComputeBatchTaskCosts(config, cpu, gpu, batch, 64, d2);
  const Nanos p1 = PredictFlow(c1, d1);
  const Nanos p2 = PredictFlow(c2, d2);
  // Depth 1 serializes push + lookup into the admission period; deeper
  // pipelines can only help the steady-state score.
  EXPECT_GE(p1, p2);
  // Nothing beats the single-batch critical path.
  EXPECT_GE(p2, batch.stages.EmbeddingTotal());
  EXPECT_GE(p2, c2.top_host());
}

}  // namespace
}  // namespace updlrm::pipeline
