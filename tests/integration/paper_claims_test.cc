// Regression guards for the paper's quantitative claims, at reduced
// scale. The benches print these as tables; these tests pin the shapes
// so calibration drift is caught by tests rather than by eyeballing
// bench output. Scales are small (sub-second), so tolerances are loose —
// the *direction* of every claim is what is asserted.
#include <gtest/gtest.h>

#include <memory>

#include "pim/system.h"
#include "trace/generator.h"
#include "trace/profiler.h"
#include "updlrm/engine.h"

namespace updlrm {
namespace {

// -------------------------------------------------- Fig. 3 (MRAM curve)

TEST(PaperClaims, Fig3MramCurveShape) {
  const pim::MramTimingModel model;
  // Flat 8..32 B.
  EXPECT_EQ(model.AccessLatency(8), model.AccessLatency(32));
  // The paper's Fig. 3 spans roughly an order of magnitude from 8 B to
  // 2 KB; our curve is 10.6x.
  const double ratio = static_cast<double>(model.AccessLatency(2048)) /
                       static_cast<double>(model.AccessLatency(8));
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 14.0);
  // §2.2: ~800 MB/s peak MRAM-WRAM bandwidth.
  const double bw = model.StreamingBandwidth(2048, 350.0e6);
  EXPECT_GT(bw, 0.7e9 * 0.9);
  EXPECT_LT(bw, 0.9e9 * 1.2);
}

// ------------------------------------------ Fig. 11 (lookup sensitivity)

struct SensitivityWorld {
  dlrm::DlrmConfig config;
  std::unique_ptr<pim::DpuSystem> system;
};

Nanos LookupTime(double avg_red, std::uint32_t nc) {
  const trace::DatasetSpec spec =
      trace::MakeBalancedSyntheticSpec(200'000, avg_red);
  trace::TraceGeneratorOptions options;
  options.num_samples = 192;
  options.num_tables = 8;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());

  dlrm::DlrmConfig config;
  config.num_tables = 8;
  config.rows_per_table = 200'000;
  config.embedding_dim = 32;
  pim::DpuSystemConfig sys;  // the Table 2 system
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kUniform;
  engine_options.nc = nc;
  auto engine = core::UpDlrmEngine::Create(nullptr, config, *t,
                                           system->get(), engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
  auto report = (*engine)->RunAll(nullptr);
  UPDLRM_CHECK(report.ok());
  return report->stages.dpu_lookup /
         static_cast<double>(report->num_batches);
}

TEST(PaperClaims, Fig11EightByteSeriesGrowsNearLinearly) {
  // Paper: 406 -> 1786 us (4.4x) from reduction 50 -> 300 at 8 B.
  const Nanos low = LookupTime(50, 2);
  const Nanos high = LookupTime(300, 2);
  const double growth = high / low;
  EXPECT_GT(growth, 3.0);
  EXPECT_LT(growth, 6.0);
  // And the absolute magnitudes land in the paper's ballpark.
  EXPECT_GT(low / 1e3, 200.0);   // us
  EXPECT_LT(low / 1e3, 800.0);
  EXPECT_GT(high / 1e3, 1000.0);
  EXPECT_LT(high / 1e3, 3000.0);
}

TEST(PaperClaims, Fig11WiderReadsGrowSlower) {
  // Paper: the >= 64 B series grows far slower with reduction.
  const double growth_8b = LookupTime(300, 2) / LookupTime(50, 2);
  const double growth_64b = LookupTime(300, 16) / LookupTime(50, 16);
  EXPECT_LT(growth_64b, growth_8b * 0.75);
}

TEST(PaperClaims, Fig11EightToThirtyTwoBytesCutsLookupTime) {
  // §4.4: growing the lookup size 8 B -> 32 B cuts the lookup time.
  EXPECT_LT(LookupTime(300, 8), LookupTime(300, 2) * 0.6);
}

// ------------------------------------------------- §3.3 (cache capacity)

TEST(PaperClaims, Sec33CacheCapacityMonotone) {
  trace::DatasetSpec spec;
  spec.name = "sec33";
  spec.num_items = 50'000;
  spec.avg_reduction = 64.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 2048;
  spec.seed = 33;
  trace::TraceGeneratorOptions toptions;
  toptions.num_samples = 256;
  toptions.num_tables = 4;
  auto t = trace::TraceGenerator(spec).Generate(toptions);
  ASSERT_TRUE(t.ok());

  dlrm::DlrmConfig config;
  config.num_tables = 4;
  config.rows_per_table = 50'000;
  config.embedding_dim = 32;

  auto lookup_at = [&](double fraction) {
    pim::DpuSystemConfig sys;
    sys.num_dpus = 32;
    sys.dpus_per_rank = 32;
    sys.functional = false;
    auto system = pim::DpuSystem::Create(sys);
    UPDLRM_CHECK(system.ok());
    core::EngineOptions options;
    options.method = partition::Method::kCacheAware;
    options.nc = 8;
    options.cache_capacity_fraction = fraction;
    options.grace.num_hot_items = 2048;
    auto engine = core::UpDlrmEngine::Create(nullptr, config, *t,
                                             system->get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK(report.ok());
    return report->stages.dpu_lookup;
  };

  const Nanos at40 = lookup_at(0.4);
  const Nanos at70 = lookup_at(0.7);
  const Nanos at100 = lookup_at(1.0);
  // Larger cache => lower (or equal) lookup time, as in §3.3.
  EXPECT_LE(at70, at40 * 1.001);
  EXPECT_LE(at100, at70 * 1.001);
  EXPECT_LT(at100, at40);
}

// -------------------------------------------------- Fig. 5 (block skew)

TEST(PaperClaims, Fig5TraceStudyDatasetsAreStronglySkewed) {
  for (const auto& spec : trace::AccessPatternDatasets()) {
    trace::TraceGeneratorOptions options;
    options.num_samples = 384;
    options.num_tables = 1;
    auto t = trace::TraceGenerator(spec).Generate(options);
    ASSERT_TRUE(t.ok()) << spec.name;
    const auto freq =
        trace::ItemFrequencies(t->tables[0], spec.num_items);
    const auto blocks = trace::RowBlockCounts(freq, 8);
    const auto skew = trace::AnalyzeSkew(blocks);
    // The paper reports up to ~340x; every dataset shows at least an
    // order of magnitude.
    EXPECT_GT(skew.max_min_ratio, 10.0) << spec.name;
    EXPECT_GT(skew.top_block_share, 0.5) << spec.name;
  }
}

}  // namespace
}  // namespace updlrm
