// Cross-module integration tests: the full pre-process + inference
// pipeline against the paper's qualitative claims, at test scale.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/systems.h"
#include "partition/metrics.h"
#include "trace/generator.h"
#include "trace/profiler.h"
#include "updlrm/engine.h"

namespace updlrm {
namespace {

struct World {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
};

World MakeWorld(double zipf_alpha, double clique_prob,
                double avg_red = 24.0) {
  World w;
  w.config.num_tables = 4;
  w.config.rows_per_table = 4'000;
  w.config.embedding_dim = 16;
  w.config.dense_features = 8;

  trace::DatasetSpec spec;
  spec.name = "it";
  spec.num_items = 4'000;
  spec.avg_reduction = avg_red;
  spec.zipf_alpha = zipf_alpha;
  spec.rank_jitter = 0.1;
  spec.clique_prob = clique_prob;
  spec.num_hot_items = 256;
  spec.seed = 1234;
  trace::TraceGeneratorOptions options;
  options.num_samples = 256;
  options.num_tables = 4;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  w.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 32;  // 8 per table
  sys.dpus_per_rank = 32;
  sys.dpu.mram_bytes = 2 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  w.system = std::move(system).value();
  return w;
}

core::EngineOptions Options(partition::Method method) {
  core::EngineOptions options;
  options.method = method;
  options.batch_size = 64;
  options.reserved_io_bytes = 256 * kKiB;
  options.grace.num_hot_items = 256;
  return options;
}

Nanos EmbeddingTime(World& w, partition::Method method) {
  auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                           w.system.get(), Options(method));
  UPDLRM_CHECK(engine.ok());
  auto report = (*engine)->RunAll(nullptr);
  UPDLRM_CHECK(report.ok());
  return report->EmbeddingTotal();
}

TEST(IntegrationTest, PartitioningHierarchyOnSkewedCoOccurringTrace) {
  // On a hot, co-occurrence-heavy trace the paper's ordering holds:
  // cache-aware <= non-uniform <= uniform embedding time.
  World w = MakeWorld(1.1, 0.65);
  const Nanos u = EmbeddingTime(w, partition::Method::kUniform);
  w.system->ResetStats();
  const Nanos nu = EmbeddingTime(w, partition::Method::kNonUniform);
  w.system->ResetStats();
  const Nanos ca = EmbeddingTime(w, partition::Method::kCacheAware);
  EXPECT_LE(nu, u * 1.001);
  EXPECT_LT(ca, nu);
}

TEST(IntegrationTest, MethodsTieOnBalancedTrace) {
  // The "clo" observation: balanced access + low cache rate makes the
  // three methods perform almost the same.
  World w = MakeWorld(0.0, 0.0);
  const Nanos u = EmbeddingTime(w, partition::Method::kUniform);
  w.system->ResetStats();
  const Nanos nu = EmbeddingTime(w, partition::Method::kNonUniform);
  w.system->ResetStats();
  const Nanos ca = EmbeddingTime(w, partition::Method::kCacheAware);
  EXPECT_NEAR(nu / u, 1.0, 0.05);
  EXPECT_NEAR(ca / u, 1.0, 0.05);
}

TEST(IntegrationTest, UpdlrmBeatsBaselinesOnHotWorkload) {
  // Fig. 8's ordering: UpDLRM < FAE < CPU < Hybrid on total inference
  // time. The ordering is a property of the DRAM-gather regime, so this
  // test runs at a scale where tables exceed the LLC and batches carry
  // hundreds of lookups — the paper's operating point — unlike the
  // other tests' toy worlds (where a CPU with an LLC-resident table
  // rightly wins).
  // Tables must dwarf the LLC for the DRAM-gather regime to hold (at
  // 100k rows the LLC covers >10% of a table and the CPU wins, rightly).
  World w;
  w.config.num_tables = 8;
  w.config.rows_per_table = 1'000'000;
  w.config.embedding_dim = 32;
  w.config.dense_features = 13;

  trace::DatasetSpec spec;
  spec.name = "fig8";
  spec.num_items = 1'000'000;
  spec.avg_reduction = 245.8;
  spec.zipf_alpha = 1.05;
  spec.rank_jitter = 0.12;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 2048;
  spec.seed = 88;
  // Enough samples for a stable frequency histogram — the LLC-share and
  // hot-set models degrade into oracles on very sparse traces.
  trace::TraceGeneratorOptions topt;
  topt.num_samples = 1'024;
  topt.num_tables = 8;
  auto t = trace::TraceGenerator(spec).Generate(topt);
  ASSERT_TRUE(t.ok());
  w.trace = std::move(t).value();

  pim::DpuSystemConfig sys;  // Table 2: two UPMEM modules, 256 DPUs
  sys.num_dpus = 256;
  sys.dpus_per_rank = 64;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());
  w.system = std::move(system).value();

  core::EngineOptions options = Options(partition::Method::kCacheAware);
  options.grace.num_hot_items = 2048;
  auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                           w.system.get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto up = (*engine)->RunAll(nullptr);
  ASSERT_TRUE(up.ok());

  const baselines::DlrmCpu cpu(w.config, w.trace);
  const baselines::DlrmHybrid hybrid(w.config, w.trace);
  baselines::FaeOptions fae_options;
  // FAE's GPU cache must exceed the host LLC's hot-row coverage to add
  // value; provision half the rows (at real scale an 11 GB GPU holds
  // far more hot rows than a 22 MB LLC).
  fae_options.hot_cache_bytes = 8ULL * 50'000 * 32 * 4;
  auto fae = baselines::Fae::Create(w.config, w.trace, fae_options);
  ASSERT_TRUE(fae.ok());

  const Nanos t_up = up->total;
  const Nanos t_cpu = cpu.RunAll(64).total;
  const Nanos t_hybrid = hybrid.RunAll(64).total;
  const Nanos t_fae = (*fae)->RunAll(64).total;

  EXPECT_LT(t_up, t_fae);
  EXPECT_LT(t_fae, t_cpu);
  EXPECT_LT(t_cpu, t_hybrid);
}

TEST(IntegrationTest, HigherReductionGrowsUpdlrmAdvantage) {
  // Fig. 8: speedup over DLRM-CPU grows with average reduction.
  World low = MakeWorld(1.0, 0.4, 12.0);
  World high = MakeWorld(1.0, 0.4, 48.0);

  auto speedup = [&](World& w) {
    auto engine = core::UpDlrmEngine::Create(
        nullptr, w.config, w.trace, w.system.get(),
        Options(partition::Method::kCacheAware));
    UPDLRM_CHECK(engine.ok());
    auto up = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK(up.ok());
    const baselines::DlrmCpu cpu(w.config, w.trace);
    return cpu.RunAll(64).total / up->total;
  };
  EXPECT_GT(speedup(high), speedup(low));
}

TEST(IntegrationTest, CacheReducesTotalMramTraffic) {
  // Fig. 6's traffic claim: CA's replayed read count is well below the
  // uncached count on a co-occurrence-heavy trace.
  World w = MakeWorld(1.1, 0.7);
  auto engine = core::UpDlrmEngine::Create(
      nullptr, w.config, w.trace, w.system.get(),
      Options(partition::Method::kCacheAware));
  ASSERT_TRUE(engine.ok());
  const auto& group = (*engine)->groups()[0];
  const partition::LoadReport report =
      partition::ReplayLoads(w.trace.tables[0], group.plan);
  EXPECT_GT(report.TrafficReduction(), 0.15);
  // And the cache-aware placement keeps the post-cache loads balanced.
  EXPECT_LT(report.cv, 0.35);
}

TEST(IntegrationTest, StageSharesShiftWithNc) {
  // §4.3: growing Nc shrinks the stage-1 share and grows the stage-3
  // share of embedding time.
  World w = MakeWorld(1.05, 0.5);
  auto run = [&](std::uint32_t nc) {
    core::EngineOptions options = Options(partition::Method::kCacheAware);
    options.nc = nc;
    auto engine = core::UpDlrmEngine::Create(nullptr, w.config, w.trace,
                                             w.system.get(), options);
    UPDLRM_CHECK(engine.ok());
    auto report = (*engine)->RunAll(nullptr);
    UPDLRM_CHECK(report.ok());
    return report->stages;
  };
  const auto s2 = run(2);
  const auto s8 = run(8);
  const double share1_nc2 = s2.cpu_to_dpu / s2.EmbeddingTotal();
  const double share1_nc8 = s8.cpu_to_dpu / s8.EmbeddingTotal();
  const double share3_nc2 = s2.dpu_to_cpu / s2.EmbeddingTotal();
  const double share3_nc8 = s8.dpu_to_cpu / s8.EmbeddingTotal();
  EXPECT_LT(share1_nc8, share1_nc2);
  EXPECT_GT(share3_nc8, share3_nc2);
}

}  // namespace
}  // namespace updlrm
