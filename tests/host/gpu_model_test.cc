#include "host/gpu_model.h"

#include <gtest/gtest.h>

namespace updlrm::host {
namespace {

TEST(GpuModelTest, MlpTimeIncludesLaunchCosts) {
  GpuModelParams params;
  params.kernel_launch_ns = 1000.0;
  const GpuTimingModel model(params);
  const Nanos zero_kernels = model.MlpTime(1'000'000, 0);
  const Nanos seven_kernels = model.MlpTime(1'000'000, 7);
  EXPECT_NEAR(seven_kernels - zero_kernels, 7000.0, 1e-6);
}

TEST(GpuModelTest, SmallBatchMlpIsLaunchDominated) {
  // The hybrid's pathology: at batch 64 the MLP FLOPs are trivial next
  // to launch + sync overheads.
  const GpuTimingModel model;
  const std::uint64_t batch_flops = 64ULL * 100'000;  // generous
  const Nanos compute_only = model.MlpTime(batch_flops, 0);
  EXPECT_LT(compute_only, model.BatchSyncOverhead() * 0.1);
}

TEST(GpuModelTest, PcieTransferHasFixedAndLinearParts) {
  GpuModelParams params;
  params.pcie_call_overhead_ns = 25'000.0;
  params.pcie_bytes_per_sec = 12.0e9;
  const GpuTimingModel model(params);
  EXPECT_NEAR(model.PcieTransfer(0), 25'000.0, 1e-9);
  EXPECT_NEAR(model.PcieTransfer(12'000'000), 25'000.0 + 1'000'000.0, 1.0);
}

TEST(GpuModelTest, DeviceGatherFasterThanHostGather) {
  const GpuTimingModel gpu;
  // 10k lookups of 128 B: device memory gathers at ~120 GB/s.
  const Nanos t = gpu.GatherTime(10'000, 128);
  EXPECT_LT(t, 20'000.0);  // well under 20 us
  EXPECT_GT(t, 0.0);
}

TEST(GpuModelTest, ValidationRejectsNonsense) {
  GpuModelParams params;
  params.mlp_efficiency = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GpuModelParams{};
  params.pcie_bytes_per_sec = -1.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GpuModelParams{};
  params.batch_sync_overhead_ns = -5.0;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_TRUE(GpuModelParams{}.Validate().ok());
}

}  // namespace
}  // namespace updlrm::host
