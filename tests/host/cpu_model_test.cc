#include "host/cpu_model.h"

#include <gtest/gtest.h>

namespace updlrm::host {
namespace {

TEST(CpuModelTest, MlpTimeScalesLinearly) {
  const CpuTimingModel model;
  const Nanos one = model.MlpTime(1'000'000);
  const Nanos ten = model.MlpTime(10'000'000);
  EXPECT_NEAR(ten / one, 10.0, 1e-9);
  EXPECT_GT(one, 0.0);
}

TEST(CpuModelTest, GatherSlowerFromDramThanLlc) {
  const CpuTimingModel model;
  const Nanos dram = model.GatherTime(10'000, 128, 1ULL << 32);
  const Nanos llc = model.GatherTime(10'000, 128, 1ULL << 20);
  EXPECT_GT(dram, 5.0 * llc);
}

TEST(CpuModelTest, GatherMatchesBandwidthArithmetic) {
  CpuModelParams params;
  params.random_gather_bytes_per_sec = 4.0e9;
  const CpuTimingModel model(params);
  // 125,850 lookups x 128 B at 4 GB/s ≈ 4.03 ms — the DLRM-CPU
  // embedding cost for the GoodReads batch in EXPERIMENTS.md.
  const Nanos t = model.GatherTime(125'850, 128, 1ULL << 33);
  EXPECT_NEAR(t, 125'850.0 * 128.0 / 4.0, t * 0.001);
}

TEST(CpuModelTest, StreamTimeUsesStreamBandwidth) {
  CpuModelParams params;
  params.stream_bytes_per_sec = 60.0e9;
  const CpuTimingModel model(params);
  EXPECT_NEAR(model.StreamTime(60'000'000'000ULL), 1e9, 1e3);
}

TEST(CpuModelTest, BagOverheadPerCall) {
  CpuModelParams params;
  params.bag_call_overhead_ns = 100.0;
  const CpuTimingModel model(params);
  EXPECT_DOUBLE_EQ(model.BagOverhead(8), 800.0);
}

TEST(CpuModelTest, ValidationRejectsNonsense) {
  CpuModelParams params;
  params.threads = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = CpuModelParams{};
  params.mlp_efficiency = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params = CpuModelParams{};
  params.random_gather_bytes_per_sec = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_TRUE(CpuModelParams{}.Validate().ok());
}

}  // namespace
}  // namespace updlrm::host
