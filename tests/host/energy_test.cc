#include "host/energy.h"

#include <gtest/gtest.h>

namespace updlrm::host {
namespace {

TEST(EnergyTest, ParamsValidate) {
  EXPECT_TRUE(EnergyParams{}.Validate().ok());
  EnergyParams bad;
  bad.cpu_idle_watts = bad.cpu_active_watts + 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = EnergyParams{};
  bad.dram_watts = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(EnergyTest, CpuOnlyArithmetic) {
  EnergyParams params;
  params.cpu_active_watts = 100.0;
  params.cpu_idle_watts = 20.0;
  params.dram_watts = 50.0;
  const EnergyModel model(params);
  ComponentActivity a;
  a.window_ns = 1e9;      // 1 second
  a.cpu_busy_ns = 0.5e9;  // half busy
  // 50 J DRAM + 100*0.5 + 20*0.5 = 110 J.
  EXPECT_NEAR(model.BatchJoules(a), 110.0, 1e-9);
}

TEST(EnergyTest, GpuAddsOnlyWhenPresent) {
  const EnergyModel model;
  ComponentActivity without;
  without.window_ns = 1e6;
  without.cpu_busy_ns = 1e6;
  ComponentActivity with = without;
  with.has_gpu = true;
  with.gpu_busy_ns = 0.0;  // even idle, the GPU draws power
  EXPECT_GT(model.BatchJoules(with), model.BatchJoules(without));
}

TEST(EnergyTest, DpuRanksScaleLinearly) {
  const EnergyModel model;
  ComponentActivity one;
  one.window_ns = 1e6;
  one.dpu_busy_ns = 1e6;
  one.dpu_ranks = 1;
  ComponentActivity four = one;
  four.dpu_ranks = 4;
  const double base = model.BatchJoules(ComponentActivity{.window_ns = 1e6});
  EXPECT_NEAR(model.BatchJoules(four) - base,
              4.0 * (model.BatchJoules(one) - base), 1e-9);
}

TEST(EnergyTest, BusyClampedToWindow) {
  const EnergyModel model;
  ComponentActivity a;
  a.window_ns = 1e6;
  a.cpu_busy_ns = 5e6;  // over-reported busy time
  ComponentActivity full;
  full.window_ns = 1e6;
  full.cpu_busy_ns = 1e6;
  EXPECT_DOUBLE_EQ(model.BatchJoules(a), model.BatchJoules(full));
}

TEST(EnergyTest, PerInferenceConversion) {
  EnergyParams params;
  params.cpu_active_watts = 64.0;
  params.cpu_idle_watts = 64.0;
  params.dram_watts = 0.0;
  const EnergyModel model(params);
  ComponentActivity a;
  a.window_ns = 1e9;
  // 64 J over 64 inferences = 1 J = 1000 mJ each.
  EXPECT_NEAR(model.MillijoulesPerInference(a, 64), 1000.0, 1e-9);
}

TEST(EnergyTest, PimIsCheaperThanGpuForMemoryBoundWork) {
  // The §2.3 motivation in miniature: serving the same batch window,
  // 4 busy DPU ranks cost far less than a busy GPU.
  const EnergyModel model;
  ComponentActivity pim;
  pim.window_ns = 1e6;
  pim.cpu_busy_ns = 0.2e6;
  pim.dpu_busy_ns = 1e6;
  pim.dpu_ranks = 4;
  ComponentActivity gpu;
  gpu.window_ns = 1e6;
  gpu.cpu_busy_ns = 0.8e6;
  gpu.has_gpu = true;
  gpu.gpu_busy_ns = 0.6e6;
  EXPECT_LT(model.BatchJoules(pim), model.BatchJoules(gpu));
}

}  // namespace
}  // namespace updlrm::host
