#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace updlrm {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, CsvHasNoPadding) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x", "y"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(TableTest, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::FmtMicros(1500.0, 1), "1.5 us");
  EXPECT_EQ(TablePrinter::FmtMillis(2.5e6, 1), "2.5 ms");
  EXPECT_EQ(TablePrinter::FmtSpeedup(2.345, 2), "2.35x");
  EXPECT_EQ(TablePrinter::FmtPercent(0.3141, 1), "31.4%");
}

TEST(TableDeathTest, MismatchedRowWidthAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace updlrm
