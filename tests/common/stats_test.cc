#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace updlrm {
namespace {

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
}

TEST(ImbalanceTest, BalancedIsOne) {
  const std::vector<double> v = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(ImbalanceRatio(v), 1.0);
}

TEST(ImbalanceTest, SkewedAboveOne) {
  const std::vector<double> v = {1.0, 1.0, 10.0};
  EXPECT_DOUBLE_EQ(ImbalanceRatio(v), 10.0 / 4.0);
}

TEST(ImbalanceTest, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(ImbalanceRatio({}), 0.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(ImbalanceRatio(zeros), 0.0);
}

TEST(MaxMinTest, Basics) {
  const std::vector<double> v = {2.0, 8.0, 4.0};
  EXPECT_DOUBLE_EQ(MaxMinRatio(v), 4.0);
}

TEST(MaxMinTest, ZeroMinIsInfinity) {
  const std::vector<double> v = {0.0, 5.0};
  EXPECT_TRUE(std::isinf(MaxMinRatio(v)));
}

TEST(MaxMinTest, AllZeroIsZero) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(MaxMinRatio(v), 0.0);
}

TEST(CvTest, BalancedIsZero) {
  const std::vector<double> v = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(v), 0.0);
}

TEST(CvTest, KnownValue) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(CoefficientOfVariation(v), 2.0 / 5.0, 1e-12);
}

TEST(GiniTest, EqualIsZero) {
  const std::vector<double> v = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(GiniCoefficient(v), 0.0, 1e-12);
}

TEST(GiniTest, ExtremeInequalityApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_GT(GiniCoefficient(v), 0.95);
}

TEST(GiniTest, MoreSkewMeansHigherGini) {
  const std::vector<double> mild = {4.0, 5.0, 6.0};
  const std::vector<double> harsh = {1.0, 1.0, 13.0};
  EXPECT_LT(GiniCoefficient(mild), GiniCoefficient(harsh));
}

TEST(ToDoublesTest, ConvertsValues) {
  const std::vector<std::uint64_t> v = {1, 2, 3};
  const std::vector<double> d = ToDoubles(v);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

}  // namespace
}  // namespace updlrm
