#include "common/cli.h"

#include <gtest/gtest.h>

namespace updlrm {
namespace {

Result<CommandLine> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CommandLine::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, EqualsSyntax) {
  auto cl = ParseArgs({"--dataset=read", "--nc=8"});
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl->GetString("dataset", ""), "read");
  EXPECT_EQ(cl->GetInt("nc", 0), 8);
}

TEST(CliTest, SpaceSyntax) {
  auto cl = ParseArgs({"--dataset", "clo", "--alpha", "0.5"});
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl->GetString("dataset", ""), "clo");
  EXPECT_DOUBLE_EQ(cl->GetDouble("alpha", 0.0), 0.5);
}

TEST(CliTest, BareFlagIsBooleanTrue) {
  auto cl = ParseArgs({"--verbose", "--nc=2"});
  ASSERT_TRUE(cl.ok());
  EXPECT_TRUE(cl->GetBool("verbose", false));
}

TEST(CliTest, DefaultsWhenAbsent) {
  auto cl = ParseArgs({});
  ASSERT_TRUE(cl.ok());
  EXPECT_EQ(cl->GetInt("missing", 7), 7);
  EXPECT_EQ(cl->GetString("missing", "d"), "d");
  EXPECT_FALSE(cl->GetBool("missing", false));
}

TEST(CliTest, PositionalArguments) {
  auto cl = ParseArgs({"pos1", "--flag=1", "pos2"});
  ASSERT_TRUE(cl.ok());
  ASSERT_EQ(cl->positional().size(), 2u);
  EXPECT_EQ(cl->positional()[0], "pos1");
  EXPECT_EQ(cl->positional()[1], "pos2");
}

TEST(CliTest, UnusedFlagsDetected) {
  auto cl = ParseArgs({"--used=1", "--typo=2"});
  ASSERT_TRUE(cl.ok());
  (void)cl->GetInt("used", 0);
  const auto unused = cl->UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliTest, BareDashDashRejected) {
  auto cl = ParseArgs({"--"});
  EXPECT_FALSE(cl.ok());
}

TEST(CliTest, HasMarksQueried) {
  auto cl = ParseArgs({"--x=1"});
  ASSERT_TRUE(cl.ok());
  EXPECT_TRUE(cl->Has("x"));
  EXPECT_TRUE(cl->UnusedFlags().empty());
}

}  // namespace
}  // namespace updlrm
