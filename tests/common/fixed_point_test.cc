#include "common/fixed_point.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace updlrm {
namespace {

TEST(FixedPointTest, RoundTripSmallValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -0.25f, 0.1f}) {
    EXPECT_NEAR(FromFixed(ToFixed(v)), v, 1.0f / kFixedPointOne);
  }
}

TEST(FixedPointTest, OneMapsExactly) {
  EXPECT_EQ(ToFixed(1.0f), kFixedPointOne);
  EXPECT_EQ(FromFixed(kFixedPointOne), 1.0f);
}

TEST(FixedPointTest, RoundsToNearest) {
  // Half an LSB rounds away from zero.
  const float half_lsb = 0.5f / kFixedPointOne;
  EXPECT_EQ(ToFixed(half_lsb), 1);
  EXPECT_EQ(ToFixed(-half_lsb), -1);
  // A quarter LSB rounds to zero.
  EXPECT_EQ(ToFixed(half_lsb / 2.0f), 0);
}

TEST(FixedPointTest, SumsAreExactInt64) {
  // Summing quantized values then dequantizing equals the exact
  // fixed-point sum regardless of order — the property the DPU pipeline
  // relies on for bit-exact partial aggregation.
  Rng rng(5);
  std::vector<std::int32_t> q;
  for (int i = 0; i < 500; ++i) {
    q.push_back(ToFixed(static_cast<float>(rng.NextGaussian() * 0.1)));
  }
  std::int64_t forward = 0;
  for (std::int32_t v : q) forward += v;
  std::int64_t backward = 0;
  for (auto it = q.rbegin(); it != q.rend(); ++it) backward += *it;
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(FromFixedSum(forward), FromFixedSum(backward));
}

TEST(FixedPointTest, QuantizeDequantizeVectors) {
  const std::vector<float> v = {0.25f, -0.75f, 1.5f};
  const auto q = QuantizeVector(v);
  const auto d = DequantizeVector(q);
  ASSERT_EQ(d.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_FLOAT_EQ(d[i], v[i]);  // all values representable exactly
  }
}

TEST(FixedPointTest, PooledSumHeadroom) {
  // 512 values at the |v| < 1 contract stay far from int32 overflow.
  const std::int64_t worst = 512LL * kFixedPointOne;
  EXPECT_LT(worst, std::int64_t{1} << 31);
}

}  // namespace
}  // namespace updlrm
