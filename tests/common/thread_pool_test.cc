#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace updlrm {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t sum = 0;  // no synchronization: must run on this thread
  pool.ParallelFor(100, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, MaxWorkersOneIsSerial) {
  ThreadPool pool(4);
  std::vector<int> order;
  pool.ParallelFor(
      50, 1,
      [&](std::size_t begin, std::size_t) {
        order.push_back(static_cast<int>(begin));  // unsynchronized
      },
      /*max_workers=*/1);
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(8, 1, [&](std::size_t, std::size_t) {
    pool.ParallelFor(8, 1, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Drain by keeping the pool alive until all tasks ran.
    while (ran.load(std::memory_order_relaxed) < 32) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, FreeParallelForSerialWidthMatchesPool) {
  // Results written to disjoint slots must be identical at any width.
  auto run = [](unsigned num_threads) {
    std::vector<std::uint64_t> out(512);
    ParallelFor(
        out.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            out[i] = i * 2654435761u;
          }
        },
        num_threads);
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(0));
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(16));
}

}  // namespace
}  // namespace updlrm
