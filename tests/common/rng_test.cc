#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace updlrm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanMatchesSmall) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(4.5);
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLargeChunked) {
  // Means above the 30-per-round chunk exercise Poisson additivity.
  Rng rng(29);
  double sum = 0.0;
  const int n = 5'000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(374.08);
  EXPECT_NEAR(sum / n, 374.08, 374.08 * 0.02);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(ZipfTest, UniformWhenAlphaZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(1000, 1.05);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 1000; ++k) sum += zipf.Probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, EmpiricalMatchesAnalytic) {
  const double alpha = 1.1;
  ZipfSampler zipf(50, alpha);
  Rng rng(42);
  std::vector<int> counts(50, 0);
  const int n = 400'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::uint64_t k : {0ULL, 1ULL, 4ULL, 20ULL}) {
    const double expected = zipf.Probability(k) * n;
    EXPECT_NEAR(counts[k], expected, std::max(40.0, expected * 0.05))
        << "rank " << k;
  }
}

TEST(ZipfTest, HeadDominatesForHighAlpha) {
  ZipfSampler zipf(1'000'000, 1.2);
  Rng rng(8);
  int head = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 100) ++head;
  }
  // With alpha = 1.2 over 1M items, the top-100 ranks carry a large
  // share of the mass.
  EXPECT_GT(head, n / 4);
}

TEST(ZipfTest, SingleElementSupport) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

class ZipfAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaSweep, SamplesInRangeAndSkewMonotone) {
  const double alpha = GetParam();
  ZipfSampler zipf(10'000, alpha);
  Rng rng(77);
  std::uint64_t head_hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t s = zipf.Sample(rng);
    ASSERT_LT(s, 10'000u);
    if (s < 10) ++head_hits;
  }
  // The analytic head mass must match the empirical one.
  double head_mass = 0.0;
  for (std::uint64_t k = 0; k < 10; ++k) head_mass += zipf.Probability(k);
  EXPECT_NEAR(static_cast<double>(head_hits) / n, head_mass,
              std::max(0.01, head_mass * 0.15));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.35, 0.55, 0.85, 1.0, 1.05,
                                           1.2));

}  // namespace
}  // namespace updlrm
