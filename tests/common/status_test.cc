#include "common/status.h"

#include <gtest/gtest.h>

namespace updlrm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad nc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad nc");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad nc");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kCapacityExceeded),
            "CAPACITY_EXCEEDED");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(StatusTest, EqualityComparesCodes) {
  EXPECT_EQ(Status::OutOfRange("a"), Status::OutOfRange("b"));
  EXPECT_FALSE(Status::OutOfRange("a") == Status::NotFound("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, OkStatusUpgradedToError) {
  // Building a Result from an OK status is a bug; it must not look OK.
  Result<int> r{Status::Ok()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

Status Fails() { return Status::CapacityExceeded("full"); }
Status Propagates() {
  UPDLRM_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kCapacityExceeded);
}

TEST(StatusDeathTest, CheckAborts) {
  EXPECT_DEATH({ UPDLRM_CHECK(1 == 2); }, "UPDLRM_CHECK failed");
}

TEST(StatusDeathTest, ResultValueOnErrorAborts) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

}  // namespace
}  // namespace updlrm
