#include "common/units.h"

#include <gtest/gtest.h>

namespace updlrm {
namespace {

TEST(UnitsTest, SizeConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(64 * kMiB, 67'108'864u);
}

TEST(UnitsTest, CyclesToNanosAt350MHz) {
  // One cycle at 350 MHz is ~2.857 ns.
  EXPECT_NEAR(CyclesToNanos(1, 350.0 * kMHz), 2.857, 0.001);
  EXPECT_NEAR(CyclesToNanos(350'000, 350.0 * kMHz), 1.0e6, 1.0);
}

TEST(UnitsTest, NanosToCyclesRoundsUp) {
  EXPECT_EQ(NanosToCycles(2.857, 350.0 * kMHz), 1u);
  EXPECT_EQ(NanosToCycles(3.0, 350.0 * kMHz), 2u);
  EXPECT_EQ(NanosToCycles(0.0, 350.0 * kMHz), 0u);
}

TEST(UnitsTest, TransferNanos) {
  // 1 GiB at 1 GB/s is ~1.0737 s.
  EXPECT_NEAR(TransferNanos(kGiB, 1.0e9), 1.0737e9, 1e6);
  EXPECT_DOUBLE_EQ(TransferNanos(0, 1.0e9), 0.0);
}

TEST(UnitsTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
}

TEST(UnitsTest, IsAligned) {
  EXPECT_TRUE(IsAligned(0, 8));
  EXPECT_TRUE(IsAligned(16, 8));
  EXPECT_FALSE(IsAligned(12, 8));
}

TEST(UnitsTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(0, 5), 0u);
}

TEST(UnitsTest, NanosConversions) {
  EXPECT_DOUBLE_EQ(NanosToMicros(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(NanosToMillis(2.5e6), 2.5);
}

}  // namespace
}  // namespace updlrm
