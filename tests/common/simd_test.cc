// Randomized property tests for the vectorized host-runtime kernels
// (common/simd.h): the AVX2 and scalar paths must produce identical
// bytes on identical inputs — the bit-exactness contract that lets the
// engine vectorize its pooled-sum and scan loops without perturbing
// determinism_test. Also pins the radix sorts (common/radix_sort.h)
// against their std::stable_sort / std::sort references, including the
// 16-bit-digit path engaged above 64 Ki elements.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/radix_sort.h"
#include "common/rng.h"
#include "common/simd.h"

namespace updlrm {
namespace {

// Sizes straddling every vector-width boundary: empty, sub-lane, exact
// multiples, one-over, and a large tail-heavy case.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                              31, 32, 33, 63, 64, 65, 100, 1000, 4097};

// Runs `fn` once on the scalar path and once on the dispatched (AVX2
// when available) path. When the build or CPU is scalar-only both runs
// take the same path and the comparison is vacuous but harmless.
template <typename Fn>
void OnBothPaths(Fn&& fn) {
  simd::ForceScalar(true);
  ASSERT_FALSE(simd::UsingAvx2());
  fn(/*scalar=*/true);
  simd::ForceScalar(false);
  fn(/*scalar=*/false);
}

class SimdTest : public ::testing::Test {
 protected:
  // Every test restores CPUID dispatch regardless of outcome.
  void TearDown() override { simd::ForceScalar(false); }
};

TEST_F(SimdTest, ForceScalarOverridesDispatch) {
  const bool avx2 = simd::Avx2Available();
  EXPECT_EQ(simd::UsingAvx2(), avx2);
  simd::ForceScalar(true);
  EXPECT_FALSE(simd::UsingAvx2());
  EXPECT_EQ(simd::Avx2Available(), avx2);  // availability is static
  simd::ForceScalar(false);
  EXPECT_EQ(simd::UsingAvx2(), avx2);
}

TEST_F(SimdTest, AddI32ToI64MatchesScalar) {
  Rng rng(1);
  for (const std::size_t n : kSizes) {
    std::vector<std::int32_t> src(n);
    std::vector<std::int64_t> init(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = static_cast<std::int32_t>(rng.NextU64());
      init[i] = static_cast<std::int64_t>(rng.NextU64());
    }
    std::vector<std::int64_t> scalar = init;
    std::vector<std::int64_t> vec = init;
    simd::ForceScalar(true);
    simd::AddI32ToI64(src.data(), scalar.data(), n);
    simd::ForceScalar(false);
    simd::AddI32ToI64(src.data(), vec.data(), n);
    ASSERT_EQ(scalar, vec) << "n=" << n;
  }
}

TEST_F(SimdTest, AddScaledF32BitExactAcrossPaths) {
  // The batched-MLP axpy: both legs must produce identical float bits
  // (one un-fused mul + add per lane — the dlrm/batched.h contract).
  Rng rng(7);
  for (const std::size_t n : kSizes) {
    std::vector<float> col(n);
    std::vector<float> init(n);
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = static_cast<float>(rng.NextDouble()) * 4.0f - 2.0f;
      init[i] = static_cast<float>(rng.NextDouble()) * 4.0f - 2.0f;
    }
    const float x = static_cast<float>(rng.NextDouble()) * 2.0f - 1.0f;
    std::vector<float> scalar = init;
    std::vector<float> vec = init;
    simd::ForceScalar(true);
    simd::AddScaledF32(col.data(), x, scalar.data(), n);
    simd::ForceScalar(false);
    simd::AddScaledF32(col.data(), x, vec.data(), n);
    ASSERT_EQ(0, std::memcmp(scalar.data(), vec.data(), n * sizeof(float)))
        << "n=" << n;
    // And against the literal reference loop.
    for (std::size_t i = 0; i < n; ++i) {
      const float expect = init[i] + col[i] * x;
      ASSERT_EQ(scalar[i], expect) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdTest, UniqueStreamCountsMatchesScalar) {
  Rng rng(2);
  for (const std::size_t n : kSizes) {
    // Sorted keys with the dedup layout: stream tag in the top two
    // bits, deliberately heavy duplication.
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t stream = rng.NextU64() % 3;
      const std::uint64_t row = rng.NextU64() % (n / 4 + 1);
      keys[i] = (stream << 62) | row;
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t scalar[3] = {0, 0, 0};
    std::uint64_t vec[3] = {0, 0, 0};
    simd::ForceScalar(true);
    simd::UniqueStreamCounts(keys.data(), n, scalar);
    simd::ForceScalar(false);
    simd::UniqueStreamCounts(keys.data(), n, vec);
    for (int s = 0; s < 3; ++s) {
      ASSERT_EQ(scalar[s], vec[s]) << "n=" << n << " stream=" << s;
    }
    // Cross-check against a from-scratch reference.
    std::uint64_t ref[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) ++ref[keys[i] >> 62];
    }
    for (int s = 0; s < 3; ++s) ASSERT_EQ(scalar[s], ref[s]);
  }
}

TEST_F(SimdTest, ScanKernelsMatchScalar) {
  Rng rng(3);
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of zeros, repeats of one value, and arbitrary magnitudes —
      // the shapes the transfer scans actually see.
      switch (rng.NextU64() % 4) {
        case 0: v[i] = 0; break;
        case 1: v[i] = 4096; break;
        case 2: v[i] = rng.NextU64() % 100; break;
        default: v[i] = rng.NextU64(); break;
      }
    }
    std::uint64_t ref_max = 0, ref_sum = 0, ref_nz = 0;
    for (const std::uint64_t x : v) {
      ref_max = std::max(ref_max, x);
      ref_sum += x;  // wrapping, same as the kernel
      ref_nz += x != 0 ? 1 : 0;
    }
    OnBothPaths([&](bool scalar) {
      ASSERT_EQ(simd::MaxU64(v.data(), n), ref_max)
          << "n=" << n << " scalar=" << scalar;
      ASSERT_EQ(simd::SumU64(v.data(), n), ref_sum)
          << "n=" << n << " scalar=" << scalar;
      ASSERT_EQ(simd::CountNonZeroU64(v.data(), n), ref_nz)
          << "n=" << n << " scalar=" << scalar;
      for (const std::uint64_t probe : {std::uint64_t{0},
                                        std::uint64_t{4096}, ref_max}) {
        bool ref_eq = true;
        for (const std::uint64_t x : v) {
          ref_eq = ref_eq && (x == 0 || x == probe);
        }
        ASSERT_EQ(simd::AllZeroOrEqualU64(v.data(), n, probe), ref_eq)
            << "n=" << n << " probe=" << probe << " scalar=" << scalar;
      }
    });
  }
}

TEST_F(SimdTest, PackPaddedMatchesScalar) {
  Rng rng(4);
  for (const std::size_t src_bytes : kSizes) {
    for (const std::size_t pad : {std::size_t{0}, std::size_t{1},
                                  std::size_t{13}, std::size_t{64}}) {
      const std::size_t dst_bytes = src_bytes + pad;
      std::vector<std::uint8_t> src(src_bytes);
      for (auto& b : src) b = static_cast<std::uint8_t>(rng.NextU64());
      // Poisoned destinations: stale bytes must be fully overwritten.
      std::vector<std::uint8_t> scalar(dst_bytes, 0xAB);
      std::vector<std::uint8_t> vec(dst_bytes, 0xCD);
      simd::ForceScalar(true);
      simd::PackPadded(src.data(), src_bytes, scalar.data(), dst_bytes);
      simd::ForceScalar(false);
      simd::PackPadded(src.data(), src_bytes, vec.data(), dst_bytes);
      ASSERT_EQ(scalar, vec) << src_bytes << "+" << pad;
      ASSERT_TRUE(std::equal(src.begin(), src.end(), scalar.begin()));
      for (std::size_t i = src_bytes; i < dst_bytes; ++i) {
        ASSERT_EQ(scalar[i], 0u) << "pad byte " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Radix sorts vs the std references they replaced.
// ---------------------------------------------------------------------

TEST(RadixSortTest, KeyMappingsPreserveOrder) {
  // Non-negative doubles: IEEE-754 bit patterns order like the values.
  const double doubles[] = {0.0, 1e-300, 0.25, 0.5, 1.0, 3.14, 1e300};
  for (std::size_t i = 0; i + 1 < std::size(doubles); ++i) {
    EXPECT_LT(AscendingKeyFromNonNegativeDouble(doubles[i]),
              AscendingKeyFromNonNegativeDouble(doubles[i + 1]));
  }
  // Descending u64: complement flips the order.
  EXPECT_LT(AscendingKeyFromDescendingU64(10), AscendingKeyFromDescendingU64(3));
  EXPECT_EQ(AscendingKeyFromDescendingU64(AscendingKeyFromDescendingU64(7)),
            std::uint64_t{7});
}

TEST(RadixSortTest, MatchesStableSortBothDigitWidths) {
  // 100 exercises the 8-bit-digit path, 70'000 the 16-bit path (the
  // kWideDigitThreshold = 64 Ki switch).
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{100}, std::size_t{70'000}}) {
    Rng rng(5);
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) {
      // Few distinct values: heavy ties make stability observable, and
      // constant high digits exercise the skip-pass fast path.
      k = rng.NextU64() % 97;
    }
    std::vector<std::uint32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0u);

    std::vector<std::uint32_t> expected = ids;
    const std::vector<std::uint64_t> original_keys = keys;
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return original_keys[a] < original_keys[b];
                     });

    StableRadixSortIdsByKey(std::span<std::uint32_t>(ids),
                            std::span<std::uint64_t>(keys));
    ASSERT_EQ(ids, expected) << "n=" << n;

    std::vector<std::uint64_t> values = original_keys;
    std::vector<std::uint64_t> sorted_ref = original_keys;
    std::sort(sorted_ref.begin(), sorted_ref.end());
    std::vector<std::uint64_t> scratch;
    RadixSortU64(std::span<std::uint64_t>(values), scratch);
    ASSERT_EQ(values, sorted_ref) << "n=" << n;
  }
}

TEST(RadixSortTest, FullWidthRandomKeys) {
  Rng rng(6);
  std::vector<std::uint64_t> keys(4096);
  for (auto& k : keys) k = rng.NextU64();
  std::vector<std::uint64_t> ref = keys;
  std::sort(ref.begin(), ref.end());
  std::vector<std::uint64_t> scratch;
  RadixSortU64(std::span<std::uint64_t>(keys), scratch);
  EXPECT_EQ(keys, ref);
}

}  // namespace
}  // namespace updlrm
