#include "pim/mram_timing.h"

#include <gtest/gtest.h>

namespace updlrm::pim {
namespace {

TEST(MramTimingTest, FlatUpTo32Bytes) {
  // Fig. 3: latency is nearly constant between 8 B and 32 B.
  const MramTimingModel model;
  EXPECT_EQ(model.AccessLatency(8), model.AccessLatency(16));
  EXPECT_EQ(model.AccessLatency(16), model.AccessLatency(32));
}

TEST(MramTimingTest, GrowsBeyond32Bytes) {
  const MramTimingModel model;
  EXPECT_GT(model.AccessLatency(64), model.AccessLatency(32));
  EXPECT_GT(model.AccessLatency(128), model.AccessLatency(64));
  EXPECT_GT(model.AccessLatency(2048), model.AccessLatency(1024));
}

TEST(MramTimingTest, MonotoneNonDecreasingInSize) {
  const MramTimingModel model;
  Cycles prev = 0;
  for (std::uint32_t bytes = 8; bytes <= 2048; bytes += 8) {
    const Cycles lat = model.AccessLatency(bytes);
    EXPECT_GE(lat, prev) << "at " << bytes;
    prev = lat;
  }
}

TEST(MramTimingTest, NearLinearForLargeAccesses) {
  // Beyond the knee, doubling the size should roughly double the
  // size-dependent latency component.
  const MramTimingModel model;
  const double base = static_cast<double>(model.AccessLatency(32));
  const double l512 = static_cast<double>(model.AccessLatency(512)) - base;
  const double l1024 = static_cast<double>(model.AccessLatency(1024)) - base;
  EXPECT_NEAR(l1024 / l512, 2.0, 0.1);
}

TEST(MramTimingTest, StreamingBandwidthNearUpmemSpec) {
  // §2.2: max MRAM-WRAM bandwidth per DPU is ~800 MB/s; the default
  // calibration should land in that neighborhood for 2 KB reads.
  const MramTimingModel model;
  const double bw = model.StreamingBandwidth(2048, 350.0e6);
  EXPECT_GT(bw, 600.0e6);
  EXPECT_LT(bw, 1000.0e6);
}

TEST(MramTimingTest, SmallAccessesWasteBandwidth) {
  // The Fig. 3 insight: per-byte cost is far worse at 8 B than at 2 KB.
  const MramTimingModel model;
  EXPECT_LT(model.StreamingBandwidth(8, 350.0e6),
            0.2 * model.StreamingBandwidth(2048, 350.0e6));
}

TEST(MramTimingTest, ValidatesAlignment) {
  const MramTimingModel model;
  EXPECT_TRUE(model.ValidateAccess(0, 8).ok());
  EXPECT_TRUE(model.ValidateAccess(64, 2048).ok());
  EXPECT_FALSE(model.ValidateAccess(4, 8).ok());    // misaligned offset
  EXPECT_FALSE(model.ValidateAccess(0, 12).ok());   // misaligned size
  EXPECT_FALSE(model.ValidateAccess(0, 0).ok());    // empty
  EXPECT_FALSE(model.ValidateAccess(0, 2056).ok()); // beyond 2 KB max
}

TEST(MramTimingTest, EngineOccupancyScalesWithSize) {
  const MramTimingModel model;
  EXPECT_GT(model.EngineOccupancy(2048), model.EngineOccupancy(8));
}

TEST(MramTimingParamsTest, ValidationCatchesBadParams) {
  MramTimingParams params;
  params.alignment = 12;
  EXPECT_FALSE(params.Validate().ok());

  params = MramTimingParams{};
  params.max_access_bytes = 0;
  EXPECT_FALSE(params.Validate().ok());

  params = MramTimingParams{};
  params.cycles_per_byte = -1.0;
  EXPECT_FALSE(params.Validate().ok());
}

}  // namespace
}  // namespace updlrm::pim
