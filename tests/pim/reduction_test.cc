// Reduction-planner tests: plan shape, the degenerate single-rank
// identity, and the "hierarchical only when strictly cheaper" contract.
#include "pim/reduction.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace updlrm::pim {
namespace {

constexpr double kStreamBw = 60.0e9;

TEST(ReductionTest, Log2Levels) {
  EXPECT_EQ(Log2Levels(0), 0u);
  EXPECT_EQ(Log2Levels(1), 0u);
  EXPECT_EQ(Log2Levels(2), 1u);
  EXPECT_EQ(Log2Levels(3), 2u);
  EXPECT_EQ(Log2Levels(4), 2u);
  EXPECT_EQ(Log2Levels(5), 3u);
  EXPECT_EQ(Log2Levels(8), 3u);
  EXPECT_EQ(Log2Levels(1024), 10u);
}

TEST(ReductionTest, SingleRankStaysFlat) {
  const FleetTopology topo(FleetTopologyConfig{}, 1);
  const std::vector<std::uint64_t> bytes = {1 << 20};
  const ReductionPlan plan = PlanReduction(topo, bytes, 1 << 16, kStreamBw);
  EXPECT_FALSE(plan.hierarchical);
  EXPECT_EQ(plan.active_ranks, 1u);
  EXPECT_EQ(plan.levels, 0u);
  // The degenerate plan prices exactly the historical flat stream.
  EXPECT_EQ(plan.time_ns, TransferNanos(1 << 20, kStreamBw));
  EXPECT_EQ(plan.flat_ns, plan.hier_ns);
}

TEST(ReductionTest, EmptyRanksAreInactive) {
  const FleetTopology topo(FleetTopologyConfig{}, 4);
  const std::vector<std::uint64_t> bytes = {1 << 20, 0, 0, 0};
  const ReductionPlan plan = PlanReduction(topo, bytes, 1 << 16, kStreamBw);
  EXPECT_EQ(plan.active_ranks, 1u);
  EXPECT_FALSE(plan.hierarchical);
}

TEST(ReductionTest, LargeFleetGoesHierarchical) {
  // 16 ranks, big per-rank pulls, tiny pooled buffer: the flat stream
  // pays 16x the bytes, the tree pays one rank plus a few cheap hops.
  const FleetTopology topo(FleetTopologyConfig{}, 16);
  const std::vector<std::uint64_t> bytes(16, 8ull << 20);
  const ReductionPlan plan = PlanReduction(topo, bytes, 1 << 12, kStreamBw);
  EXPECT_TRUE(plan.hierarchical);
  EXPECT_EQ(plan.active_ranks, 16u);
  EXPECT_EQ(plan.levels, 4u);
  EXPECT_LT(plan.hier_ns, plan.flat_ns);
  EXPECT_EQ(plan.time_ns, plan.hier_ns);
}

TEST(ReductionTest, HugePooledBufferStaysFlat) {
  // When the pooled buffer dwarfs the partials, tree hops dominate and
  // the flat stream wins.
  const FleetTopology topo(FleetTopologyConfig{}, 16);
  const std::vector<std::uint64_t> bytes(16, 4096);
  const ReductionPlan plan =
      PlanReduction(topo, bytes, 256ull << 20, kStreamBw);
  EXPECT_FALSE(plan.hierarchical);
  EXPECT_EQ(plan.time_ns, plan.flat_ns);
}

TEST(ReductionTest, MergeLevelHopEscalatesAtHostBoundary) {
  FleetTopologyConfig config;
  config.ranks_per_host = 4;
  const FleetTopology topo(config, 16);
  EXPECT_EQ(MergeLevelHop(topo, 0), TransferHop::kCrossRank);  // dist 1
  EXPECT_EQ(MergeLevelHop(topo, 1), TransferHop::kCrossRank);  // dist 2
  EXPECT_EQ(MergeLevelHop(topo, 2), TransferHop::kCrossHost);  // dist 4
  EXPECT_EQ(MergeLevelHop(topo, 3), TransferHop::kCrossHost);  // dist 8

  const FleetTopology flat(FleetTopologyConfig{}, 16);
  for (std::uint32_t l = 0; l < 4; ++l) {
    EXPECT_EQ(MergeLevelHop(flat, l), TransferHop::kCrossRank);
  }
}

// Property: time_ns is always min(flat, hier), hierarchical implies a
// strict win, and the shape invariants hold for random fleets — the
// same invariants check::AuditReductionPlan re-derives.
TEST(ReductionTest, PlanInvariantsProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    FleetTopologyConfig config;
    config.ranks_per_host =
        static_cast<std::uint32_t>(rng.NextBounded(5));  // 0 = one host
    const std::uint32_t ranks =
        1 + static_cast<std::uint32_t>(rng.NextBounded(64));
    const FleetTopology topo(config, ranks);
    std::vector<std::uint64_t> bytes(ranks);
    for (auto& b : bytes) {
      b = rng.NextBernoulli(0.2) ? 0 : rng.NextBounded(16ull << 20);
    }
    const std::uint64_t pooled = rng.NextBounded(8ull << 20);
    const ReductionPlan plan = PlanReduction(topo, bytes, pooled, kStreamBw);

    std::uint32_t active = 0;
    for (const auto b : bytes) active += b > 0 ? 1 : 0;
    EXPECT_EQ(plan.active_ranks, active);
    EXPECT_EQ(plan.levels, Log2Levels(active));
    EXPECT_EQ(plan.time_ns, std::min(plan.flat_ns, plan.hier_ns));
    if (plan.hierarchical) {
      EXPECT_GT(plan.active_ranks, 1u);
      EXPECT_LT(plan.hier_ns, plan.flat_ns);
    } else {
      EXPECT_EQ(plan.time_ns, plan.flat_ns);
    }
  }
}

}  // namespace
}  // namespace updlrm::pim
