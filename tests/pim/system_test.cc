#include "pim/system.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::pim {
namespace {

DpuSystemConfig SmallConfig() {
  DpuSystemConfig config;
  config.num_dpus = 16;
  config.dpus_per_rank = 8;
  config.dpu.mram_bytes = 1 * kMiB;  // keep test allocations small
  return config;
}

TEST(SystemTest, CreateWithPaperDefaults) {
  auto system = DpuSystem::Create(DpuSystemConfig{});
  ASSERT_TRUE(system.ok());
  // Table 2: 256 DPUs at 350 MHz with 14 tasklets.
  EXPECT_EQ((*system)->num_dpus(), 256u);
  EXPECT_EQ((*system)->num_ranks(), 4u);
  EXPECT_DOUBLE_EQ((*system)->config().dpu.clock_hz, 350.0e6);
  EXPECT_EQ((*system)->config().dpu.num_tasklets, 14u);
  EXPECT_EQ((*system)->config().dpu.mram_bytes, 64u * kMiB);
}

TEST(SystemTest, DpusAreIndexed) {
  auto system = DpuSystem::Create(SmallConfig());
  ASSERT_TRUE(system.ok());
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ((*system)->dpu(i).id(), i);
  }
}

TEST(SystemTest, MramIsolatedPerDpu) {
  auto system = DpuSystem::Create(SmallConfig());
  ASSERT_TRUE(system.ok());
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE((*system)->dpu(0).mram().Write(0, data).ok());
  std::vector<std::uint8_t> out(8, 0xff);
  ASSERT_TRUE((*system)->dpu(1).mram().Read(0, out).ok());
  for (std::uint8_t b : out) EXPECT_EQ(b, 0u);
}

TEST(SystemTest, StatsAccumulateAndReset) {
  auto system = DpuSystem::Create(SmallConfig());
  ASSERT_TRUE(system.ok());
  (*system)->dpu(3).stats().lookups = 42;
  (*system)->dpu(3).stats().kernel_cycles = 7;
  (*system)->ResetStats();
  EXPECT_EQ((*system)->dpu(3).stats().lookups, 0u);
  EXPECT_EQ((*system)->dpu(3).stats().kernel_cycles, 0u);
}

TEST(SystemTest, HighWatermarkAggregates) {
  auto system = DpuSystem::Create(SmallConfig());
  ASSERT_TRUE(system.ok());
  EXPECT_EQ((*system)->TotalHighWatermark(), 0u);
  const std::vector<std::uint8_t> data(64, 1);
  ASSERT_TRUE((*system)->dpu(0).mram().Write(0, data).ok());
  ASSERT_TRUE((*system)->dpu(5).mram().Write(128, data).ok());
  EXPECT_EQ((*system)->TotalHighWatermark(), 64u + 192u);
}

TEST(SystemTest, InvalidConfigsRejected) {
  DpuSystemConfig config = SmallConfig();
  config.num_dpus = 0;
  EXPECT_FALSE(DpuSystem::Create(config).ok());

  config = SmallConfig();
  config.dpus_per_rank = 0;
  EXPECT_FALSE(DpuSystem::Create(config).ok());

  config = SmallConfig();
  config.dpu.num_tasklets = 25;  // above hardware max
  EXPECT_FALSE(DpuSystem::Create(config).ok());

  config = SmallConfig();
  config.transfer.serial_bytes_per_sec = 0.0;
  EXPECT_FALSE(DpuSystem::Create(config).ok());
}

TEST(SystemTest, ModelsShareConfiguration) {
  DpuSystemConfig config = SmallConfig();
  config.mram_timing.base_latency = 123;
  auto system = DpuSystem::Create(config);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ((*system)->mram_timing().AccessLatency(8), 123u);
  EXPECT_EQ(
      (*system)->kernel_cost().mram_timing().AccessLatency(8), 123u);
}

}  // namespace
}  // namespace updlrm::pim
