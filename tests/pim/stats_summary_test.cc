#include "pim/stats_summary.h"

#include <gtest/gtest.h>

namespace updlrm::pim {
namespace {

std::unique_ptr<DpuSystem> SmallSystem() {
  DpuSystemConfig config;
  config.num_dpus = 4;
  config.dpus_per_rank = 4;
  config.dpu.mram_bytes = 1 * kMiB;
  auto system = DpuSystem::Create(config);
  UPDLRM_CHECK(system.ok());
  return std::move(system).value();
}

TEST(StatsSummaryTest, EmptySystemIsZero) {
  auto system = SmallSystem();
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_EQ(s.total_lookups, 0u);
  EXPECT_EQ(s.max_kernel_cycles, 0u);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.cache_read_share, 0.0);
}

TEST(StatsSummaryTest, AggregatesCounters) {
  auto system = SmallSystem();
  for (std::uint32_t d = 0; d < 4; ++d) {
    system->dpu(d).stats().lookups = 10 * (d + 1);
    system->dpu(d).stats().cache_reads = 5;
    system->dpu(d).stats().kernel_cycles = 100 * (d + 1);
    system->dpu(d).stats().mram_bytes_read = 1000;
  }
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_EQ(s.total_lookups, 100u);
  EXPECT_EQ(s.total_cache_reads, 20u);
  EXPECT_EQ(s.total_mram_bytes_read, 4000u);
  EXPECT_EQ(s.max_kernel_cycles, 400u);
  EXPECT_EQ(s.mean_kernel_cycles, 250u);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 400.0 / 250.0);
  EXPECT_DOUBLE_EQ(s.cache_read_share, 20.0 / 120.0);
}

TEST(StatsSummaryTest, BalancedWorkHasUnitImbalance) {
  auto system = SmallSystem();
  for (std::uint32_t d = 0; d < 4; ++d) {
    system->dpu(d).stats().kernel_cycles = 500;
  }
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.cycle_cv, 0.0);
}

}  // namespace
}  // namespace updlrm::pim
