#include "pim/stats_summary.h"

#include <gtest/gtest.h>

namespace updlrm::pim {
namespace {

std::unique_ptr<DpuSystem> SmallSystem() {
  DpuSystemConfig config;
  config.num_dpus = 4;
  config.dpus_per_rank = 4;
  config.dpu.mram_bytes = 1 * kMiB;
  auto system = DpuSystem::Create(config);
  UPDLRM_CHECK(system.ok());
  return std::move(system).value();
}

TEST(StatsSummaryTest, EmptySystemIsZero) {
  auto system = SmallSystem();
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_EQ(s.total_lookups, 0u);
  EXPECT_EQ(s.max_kernel_cycles, 0u);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.cache_read_share, 0.0);
}

TEST(StatsSummaryTest, AggregatesCounters) {
  auto system = SmallSystem();
  for (std::uint32_t d = 0; d < 4; ++d) {
    system->dpu(d).stats().lookups = 10 * (d + 1);
    system->dpu(d).stats().cache_reads = 5;
    system->dpu(d).stats().kernel_cycles = 100 * (d + 1);
    system->dpu(d).stats().mram_bytes_read = 1000;
  }
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_EQ(s.total_lookups, 100u);
  EXPECT_EQ(s.total_cache_reads, 20u);
  EXPECT_EQ(s.total_mram_bytes_read, 4000u);
  EXPECT_EQ(s.max_kernel_cycles, 400u);
  EXPECT_EQ(s.mean_kernel_cycles, 250u);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 400.0 / 250.0);
  EXPECT_DOUBLE_EQ(s.cache_read_share, 20.0 / 120.0);
}

TEST(StatsSummaryTest, EveryListedCounterIsAggregated) {
  // Walks UPDLRM_DPU_COUNTER_FIELDS itself: every counter in the list
  // gets a distinct per-DPU value and must show up summed in its
  // total_<name> field. A counter added to DpuStats but not to the list
  // trips the layout static_assert in stats_summary.cc; one added to
  // the list but mis-aggregated fails here.
  auto system = SmallSystem();
  std::uint64_t salt = 1;
#define UPDLRM_FILL_COUNTER(name)                        \
  for (std::uint32_t d = 0; d < 4; ++d) {                \
    system->dpu(d).stats().name = salt * 1000 + d;       \
  }                                                      \
  ++salt;
  UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_FILL_COUNTER)
#undef UPDLRM_FILL_COUNTER

  const DpuStatsSummary s = SummarizeStats(*system);
  salt = 1;
#define UPDLRM_CHECK_TOTAL(name)                                   \
  EXPECT_EQ(s.total_##name, salt * 4000 + 0 + 1 + 2 + 3) << #name; \
  ++salt;
  UPDLRM_DPU_COUNTER_FIELDS(UPDLRM_CHECK_TOTAL)
#undef UPDLRM_CHECK_TOTAL
}

TEST(StatsSummaryTest, CheckViolationsDefaultZeroAndUntouched) {
  // SummarizeStats never writes check_violations: it is the engine's
  // field (filled from UpDlrmEngine::check_violations() by benches).
  auto system = SmallSystem();
  DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_EQ(s.check_violations, 0u);
  s.check_violations = 7;
  s = SummarizeStats(*system);
  EXPECT_EQ(s.check_violations, 0u);
}

TEST(StatsSummaryTest, LeverSharesComputedFromCounters) {
  auto system = SmallSystem();
  system->dpu(0).stats().lookups = 60;
  system->dpu(0).stats().wram_hits = 40;
  system->dpu(1).stats().dedup_saved_reads = 25;
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_DOUBLE_EQ(s.wram_hit_share, 40.0 / 100.0);
  // Pre-dedup references = lookups + wram hits + saved reads.
  EXPECT_DOUBLE_EQ(s.dedup_saved_share, 25.0 / 125.0);
}

TEST(StatsSummaryTest, BalancedWorkHasUnitImbalance) {
  auto system = SmallSystem();
  for (std::uint32_t d = 0; d < 4; ++d) {
    system->dpu(d).stats().kernel_cycles = 500;
  }
  const DpuStatsSummary s = SummarizeStats(*system);
  EXPECT_DOUBLE_EQ(s.cycle_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.cycle_cv, 0.0);
}

}  // namespace
}  // namespace updlrm::pim
