#include "pim/mram.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::pim {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t start = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(start + i);
  }
  return v;
}

TEST(MramTest, WriteReadRoundTrip) {
  Mram mram(1024);
  const auto data = Pattern(16);
  ASSERT_TRUE(mram.Write(64, data).ok());
  std::vector<std::uint8_t> out(16);
  ASSERT_TRUE(mram.Read(64, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MramTest, LazyAllocationTracksHighWatermark) {
  Mram mram(64 * 1024 * 1024);
  EXPECT_EQ(mram.high_watermark(), 0u);
  ASSERT_TRUE(mram.Write(1024, Pattern(8)).ok());
  EXPECT_EQ(mram.high_watermark(), 1032u);
  EXPECT_EQ(mram.capacity(), 64u * 1024 * 1024);
}

TEST(MramTest, ReadBeyondWatermarkYieldsZeros) {
  Mram mram(1024);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  std::vector<std::uint8_t> out(8, 0xff);
  ASSERT_TRUE(mram.Read(512, out).ok());
  for (std::uint8_t b : out) EXPECT_EQ(b, 0u);
}

TEST(MramTest, PartialOverlapReadsWrittenPrefix) {
  Mram mram(1024);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  std::vector<std::uint8_t> out(16, 0xff);
  ASSERT_TRUE(mram.Read(0, out).ok());
  EXPECT_EQ(out[7], 8u);
  EXPECT_EQ(out[8], 0u);  // past the watermark
}

TEST(MramTest, MisalignedOffsetRejected) {
  Mram mram(1024);
  EXPECT_FALSE(mram.Write(4, Pattern(8)).ok());
  std::vector<std::uint8_t> out(8);
  EXPECT_FALSE(mram.Read(4, out).ok());
}

TEST(MramTest, CapacityEnforced) {
  Mram mram(64);
  EXPECT_TRUE(mram.Write(56, Pattern(8)).ok());
  const Status s = mram.Write(64, Pattern(8));
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
  std::vector<std::uint8_t> out(16);
  EXPECT_EQ(mram.Read(56, out).code(), StatusCode::kOutOfRange);
}

TEST(MramTest, OverwriteReplacesBytes) {
  Mram mram(128);
  ASSERT_TRUE(mram.Write(0, Pattern(8, 1)).ok());
  ASSERT_TRUE(mram.Write(0, Pattern(8, 100)).ok());
  std::vector<std::uint8_t> out(8);
  ASSERT_TRUE(mram.Read(0, out).ok());
  EXPECT_EQ(out[0], 100u);
}

}  // namespace
}  // namespace updlrm::pim
