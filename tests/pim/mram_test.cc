#include "pim/mram.h"

#include <gtest/gtest.h>

#include <span>
#include <utility>
#include <vector>

namespace updlrm::pim {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t start = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(start + i);
  }
  return v;
}

TEST(MramTest, WriteReadRoundTrip) {
  Mram mram(1024);
  const auto data = Pattern(16);
  ASSERT_TRUE(mram.Write(64, data).ok());
  std::vector<std::uint8_t> out(16);
  ASSERT_TRUE(mram.Read(64, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MramTest, LazyAllocationTracksHighWatermark) {
  Mram mram(64 * 1024 * 1024);
  EXPECT_EQ(mram.high_watermark(), 0u);
  ASSERT_TRUE(mram.Write(1024, Pattern(8)).ok());
  EXPECT_EQ(mram.high_watermark(), 1032u);
  EXPECT_EQ(mram.capacity(), 64u * 1024 * 1024);
}

TEST(MramTest, ReadBeyondWatermarkYieldsZeros) {
  Mram mram(1024);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  std::vector<std::uint8_t> out(8, 0xff);
  ASSERT_TRUE(mram.Read(512, out).ok());
  for (std::uint8_t b : out) EXPECT_EQ(b, 0u);
}

TEST(MramTest, PartialOverlapReadsWrittenPrefix) {
  Mram mram(1024);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  std::vector<std::uint8_t> out(16, 0xff);
  ASSERT_TRUE(mram.Read(0, out).ok());
  EXPECT_EQ(out[7], 8u);
  EXPECT_EQ(out[8], 0u);  // past the watermark
}

TEST(MramTest, MisalignedOffsetRejected) {
  Mram mram(1024);
  EXPECT_FALSE(mram.Write(4, Pattern(8)).ok());
  std::vector<std::uint8_t> out(8);
  EXPECT_FALSE(mram.Read(4, out).ok());
}

TEST(MramTest, CapacityEnforced) {
  Mram mram(64);
  EXPECT_TRUE(mram.Write(56, Pattern(8)).ok());
  const Status s = mram.Write(64, Pattern(8));
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
  std::vector<std::uint8_t> out(16);
  EXPECT_EQ(mram.Read(56, out).code(), StatusCode::kOutOfRange);
}

TEST(MramTest, OverwriteReplacesBytes) {
  Mram mram(128);
  ASSERT_TRUE(mram.Write(0, Pattern(8, 1)).ok());
  ASSERT_TRUE(mram.Write(0, Pattern(8, 100)).ok());
  std::vector<std::uint8_t> out(8);
  ASSERT_TRUE(mram.Read(0, out).ok());
  EXPECT_EQ(out[0], 100u);
}

// ---- Error paths and edge cases. ----

TEST(MramTest, ZeroLengthAccessesAreValidNoOps) {
  // Empty spans may carry a null data pointer; the bank must neither
  // memcpy from it nor materialize storage for it.
  Mram mram(1024);
  EXPECT_TRUE(mram.Write(64, {}).ok());
  EXPECT_EQ(mram.high_watermark(), 0u);
  std::span<std::uint8_t> empty;
  EXPECT_TRUE(mram.Read(64, empty).ok());
  // Alignment and capacity still apply to the degenerate access.
  EXPECT_FALSE(mram.Write(3, {}).ok());
  EXPECT_FALSE(mram.Read(2048, empty).ok());
}

TEST(MramTest, ErrorStatusCodesAreSpecific) {
  Mram mram(128);
  EXPECT_EQ(mram.Write(4, Pattern(8)).code(), StatusCode::kInvalidArgument);
  std::vector<std::uint8_t> out(8);
  EXPECT_EQ(mram.Read(4, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mram.Write(128, Pattern(8)).code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(mram.Read(128, out).code(), StatusCode::kOutOfRange);
}

TEST(MramTest, FailedAccessLeavesStateUntouched) {
  Mram mram(64);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  const std::uint64_t watermark = mram.high_watermark();
  EXPECT_FALSE(mram.Write(32, Pattern(64)).ok());  // exceeds capacity
  EXPECT_EQ(mram.high_watermark(), watermark);
  std::vector<std::uint8_t> out(8);
  ASSERT_TRUE(mram.Read(0, out).ok());
  EXPECT_EQ(out, Pattern(8));
}

namespace {
class RecordingObserver final : public MramObserver {
 public:
  void OnWrite(std::uint64_t offset, std::uint64_t bytes) override {
    writes.push_back({offset, bytes});
  }
  void OnRead(std::uint64_t offset, std::uint64_t bytes) override {
    reads.push_back({offset, bytes});
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reads;
};
}  // namespace

TEST(MramTest, ObserverSeesValidAccessesOnly) {
  Mram mram(1024);
  RecordingObserver obs;
  mram.set_observer(&obs);
  ASSERT_TRUE(mram.Write(64, Pattern(16)).ok());
  std::vector<std::uint8_t> out(16);
  ASSERT_TRUE(mram.Read(64, out).ok());
  // Rejected accesses never reach the observer: the hook models the
  // hardware's view, and the bank already refused these.
  EXPECT_FALSE(mram.Write(3, Pattern(8)).ok());
  EXPECT_FALSE(mram.Read(2048, out).ok());
  ASSERT_EQ(obs.writes.size(), 1u);
  EXPECT_EQ(obs.writes[0], (std::pair<std::uint64_t, std::uint64_t>{64, 16}));
  ASSERT_EQ(obs.reads.size(), 1u);
  EXPECT_EQ(obs.reads[0], (std::pair<std::uint64_t, std::uint64_t>{64, 16}));
  mram.set_observer(nullptr);
  ASSERT_TRUE(mram.Write(0, Pattern(8)).ok());
  EXPECT_EQ(obs.writes.size(), 1u);  // detached: no further callbacks
}

}  // namespace
}  // namespace updlrm::pim
