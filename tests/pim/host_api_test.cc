#include "pim/host_api.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace updlrm::pim {
namespace {

std::unique_ptr<DpuSystem> SmallSystem(std::uint32_t dpus = 8) {
  DpuSystemConfig config;
  config.num_dpus = dpus;
  config.dpus_per_rank = dpus;
  config.dpu.mram_bytes = 1 * kMiB;
  auto system = DpuSystem::Create(config);
  UPDLRM_CHECK(system.ok());
  return std::move(system).value();
}

// A user kernel: sum N int32 values resident in MRAM and write the
// result back — the "hello world" of PIM offload.
class SumKernel : public DpuProgram {
 public:
  SumKernel(std::uint64_t input_offset, std::uint32_t count,
            std::uint64_t output_offset)
      : input_offset_(input_offset),
        count_(count),
        output_offset_(output_offset) {}

  Status Run(std::uint32_t /*dpu_index*/, Mram& mram,
             std::vector<KernelWorkload>& phases) override {
    // Functional part: stream 64-value chunks and accumulate.
    std::int64_t sum = 0;
    std::vector<std::int32_t> chunk(64);
    for (std::uint32_t i = 0; i < count_; i += 64) {
      const std::uint32_t n = std::min(64u, count_ - i);
      auto bytes = std::span<std::uint8_t>(
          reinterpret_cast<std::uint8_t*>(chunk.data()), 64 * 4);
      UPDLRM_RETURN_IF_ERROR(mram.Read(input_offset_ + i * 4ull, bytes));
      for (std::uint32_t k = 0; k < n; ++k) sum += chunk[k];
    }
    const auto out = static_cast<std::int32_t>(sum);
    UPDLRM_RETURN_IF_ERROR(mram.Write(
        output_offset_,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(&out), sizeof(out))));
    // Timing part: one phase of chunked reads + accumulation.
    phases.push_back(KernelWorkload{
        .num_items = CeilDiv(count_, 64),
        .instr_cycles_per_item = 64 * 2 + 16,
        .dma_latency_per_item = 150,
        .dma_occupancy_per_item = 120,
    });
    return Status::Ok();
  }

 private:
  std::uint64_t input_offset_;
  std::uint32_t count_;
  std::uint64_t output_offset_;
};

TEST(HostApiTest, AllocateValidatesRange) {
  auto system = SmallSystem();
  EXPECT_TRUE(DpuSet::Allocate(system.get(), 0, 8).ok());
  EXPECT_TRUE(DpuSet::Allocate(system.get(), 4, 4).ok());
  EXPECT_FALSE(DpuSet::Allocate(system.get(), 4, 5).ok());
  EXPECT_FALSE(DpuSet::Allocate(system.get(), 0, 0).ok());
}

TEST(HostApiTest, BroadcastReachesEveryDpu) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 8);
  ASSERT_TRUE(set.ok());
  const std::vector<std::uint8_t> data = {9, 8, 7, 6, 5, 4, 3, 2};
  auto t = set->Broadcast(64, data);
  ASSERT_TRUE(t.ok());
  EXPECT_GT(*t, 0.0);
  std::vector<std::uint8_t> readback(8);
  for (std::uint32_t d = 0; d < 8; ++d) {
    ASSERT_TRUE(set->dpu(d).mram().Read(64, readback).ok());
    EXPECT_EQ(readback, data);
  }
}

TEST(HostApiTest, PushWritesPerDpuBuffers) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 2, 4);  // offset subset
  ASSERT_TRUE(set.ok());
  std::vector<std::vector<std::uint8_t>> buffers(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    buffers[i].assign(8, static_cast<std::uint8_t>(i + 1));
  }
  ASSERT_TRUE(set->Push(0, buffers).ok());
  std::vector<std::uint8_t> readback(8);
  ASSERT_TRUE(system->dpu(3).mram().Read(0, readback).ok());
  EXPECT_EQ(readback[0], 2u);  // set index 1 => global DPU 3
  // DPUs outside the set stay untouched.
  EXPECT_EQ(system->dpu(0).mram().high_watermark(), 0u);
}

TEST(HostApiTest, PushRejectsWrongBufferCount) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 4);
  ASSERT_TRUE(set.ok());
  std::vector<std::vector<std::uint8_t>> buffers(3);
  EXPECT_FALSE(set->Push(0, buffers).ok());
}

TEST(HostApiTest, PullReadsBack) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 2);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->dpu(0).mram().Write(8, std::vector<std::uint8_t>{1, 1,
                                                                    1, 1,
                                                                    1, 1,
                                                                    1, 1})
                  .ok());
  std::vector<std::vector<std::uint8_t>> out;
  auto t = set->Pull(8, 8, &out);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0], 1u);
  EXPECT_EQ(out[1][0], 0u);  // never written: zeros
}

// ---- Status propagation through the facade's error paths. ----

TEST(HostApiTest, BroadcastPropagatesMramErrors) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 2);
  ASSERT_TRUE(set.ok());
  const std::vector<std::uint8_t> data(8, 1);
  // Misaligned offset: rejected by the first bank, surfaced verbatim.
  EXPECT_EQ(set->Broadcast(3, data).status().code(),
            StatusCode::kInvalidArgument);
  // Beyond the 1 MiB bank.
  EXPECT_EQ(set->Broadcast(1 * kMiB, data).status().code(),
            StatusCode::kCapacityExceeded);
  // Nothing was partially written on the failed paths.
  EXPECT_EQ(system->TotalHighWatermark(), 0u);
}

TEST(HostApiTest, PushPropagatesMramErrors) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 2);
  ASSERT_TRUE(set.ok());
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(8));
  EXPECT_EQ(set->Push(12, buffers).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(set->Push(1 * kMiB, buffers).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(HostApiTest, PullPropagatesMramErrors) {
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 2);
  ASSERT_TRUE(set.ok());
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_EQ(set->Pull(4, 8, &out).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(set->Pull(1 * kMiB, 8, &out).status().code(),
            StatusCode::kOutOfRange);
}

TEST(HostApiTest, LaunchPropagatesProgramFailure) {
  // A kernel whose MRAM access fails must surface that Status from
  // Launch, not crash or report success.
  class BrokenKernel : public DpuProgram {
   public:
    Status Run(std::uint32_t /*dpu_index*/, Mram& mram,
               std::vector<KernelWorkload>& /*phases*/) override {
      std::vector<std::uint8_t> buf(8);
      return mram.Read(2 * kMiB, buf);  // beyond the bank
    }
  };
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 2);
  ASSERT_TRUE(set.ok());
  BrokenKernel kernel;
  EXPECT_EQ(set->Launch(kernel).status().code(), StatusCode::kOutOfRange);
}

TEST(HostApiTest, EndToEndSumKernel) {
  // The full SDK-style flow: push data, launch, pull results — with a
  // user-defined kernel, proving the substrate is workload-agnostic.
  auto system = SmallSystem();
  auto set = DpuSet::Allocate(system.get(), 0, 8);
  ASSERT_TRUE(set.ok());

  constexpr std::uint32_t kValues = 256;
  std::vector<std::vector<std::uint8_t>> buffers(8);
  std::vector<std::int32_t> expected(8, 0);
  for (std::uint32_t d = 0; d < 8; ++d) {
    std::vector<std::int32_t> values(kValues);
    std::iota(values.begin(), values.end(),
              static_cast<std::int32_t>(d));
    for (std::int32_t v : values) expected[d] += v;
    buffers[d].resize(kValues * 4);
    std::memcpy(buffers[d].data(), values.data(), kValues * 4);
  }
  ASSERT_TRUE(set->Push(0, buffers).ok());

  SumKernel kernel(/*input_offset=*/0, kValues,
                   /*output_offset=*/64 * kKiB);
  auto launch_time = set->Launch(kernel);
  ASSERT_TRUE(launch_time.ok());
  EXPECT_GT(*launch_time,
            system->transfer().KernelLaunchOverhead());
  EXPECT_GT(system->dpu(0).stats().kernel_cycles, 0u);

  std::vector<std::vector<std::uint8_t>> out;
  ASSERT_TRUE(set->Pull(64 * kKiB, 8, &out).ok());
  for (std::uint32_t d = 0; d < 8; ++d) {
    std::int32_t result = 0;
    std::memcpy(&result, out[d].data(), 4);
    EXPECT_EQ(result, expected[d]) << "DPU " << d;
  }
}

}  // namespace
}  // namespace updlrm::pim
