// Fleet-topology cost-model tests: hop classification, the monotonicity
// theorem ("more hops never cheaper"), and the degenerate single-host
// configuration.
#include "pim/topology.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace updlrm::pim {
namespace {

TEST(TopologyTest, ValidateRejectsNonMonotoneBandwidth) {
  FleetTopologyConfig config;
  config.cross_rank_bytes_per_sec = config.same_rank_bytes_per_sec * 2;
  EXPECT_FALSE(config.Validate().ok());

  config = FleetTopologyConfig{};
  config.cross_host_bytes_per_sec = config.cross_rank_bytes_per_sec * 2;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, ValidateRejectsNonMonotoneLatency) {
  FleetTopologyConfig config;
  config.cross_rank_latency_ns = config.cross_host_latency_ns + 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, ValidateRejectsZeroBandwidth) {
  FleetTopologyConfig config;
  config.same_rank_bytes_per_sec = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TopologyTest, HopClassification) {
  FleetTopologyConfig config;
  config.ranks_per_host = 2;
  const FleetTopology topo(config, 8);
  EXPECT_EQ(topo.num_hosts(), 4u);
  EXPECT_FALSE(topo.single_host());
  EXPECT_EQ(topo.HopBetween(0, 0), TransferHop::kSameRank);
  EXPECT_EQ(topo.HopBetween(0, 1), TransferHop::kCrossRank);
  EXPECT_EQ(topo.HopBetween(1, 0), TransferHop::kCrossRank);
  EXPECT_EQ(topo.HopBetween(0, 2), TransferHop::kCrossHost);
  EXPECT_EQ(topo.HopBetween(3, 6), TransferHop::kCrossHost);
}

TEST(TopologyTest, SingleHostIsDegenerate) {
  const FleetTopology topo(FleetTopologyConfig{}, 4);
  EXPECT_TRUE(topo.single_host());
  EXPECT_EQ(topo.num_hosts(), 1u);
  EXPECT_EQ(topo.HopBetween(0, 3), TransferHop::kCrossRank);
  // No rank pays remote ingress on the front-end host.
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(topo.IngressExtra(r, 1 << 20), 0.0) << r;
  }
}

TEST(TopologyTest, HostOffsetMakesEveryRankRemote) {
  FleetTopologyConfig config;
  config.host_offset = 1;  // a shard carved out onto host 1
  const FleetTopology topo(config, 4);
  EXPECT_FALSE(topo.single_host());
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(topo.HostOfRank(r), 1u);
    EXPECT_GT(topo.IngressExtra(r, 1 << 20), 0.0) << r;
  }
  // Zero bytes never pay the ingress latency.
  EXPECT_EQ(topo.IngressExtra(0, 0), 0.0);
}

TEST(TopologyTest, IngressExtraOnlyOffHostZero) {
  FleetTopologyConfig config;
  config.ranks_per_host = 2;
  const FleetTopology topo(config, 4);
  EXPECT_EQ(topo.IngressExtra(0, 4096), 0.0);
  EXPECT_EQ(topo.IngressExtra(1, 4096), 0.0);
  EXPECT_GT(topo.IngressExtra(2, 4096), 0.0);
  EXPECT_GT(topo.IngressExtra(3, 4096), 0.0);
}

// The monotonicity theorem: for any *valid* configuration, a farther
// hop class never prices a byte movement cheaper, at any transfer size.
TEST(TopologyTest, MoreHopsNeverCheaperProperty) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    FleetTopologyConfig config;
    // Random bandwidths/latencies, then sort them into the monotone
    // order Validate demands — every valid config is reachable this way.
    double bw[3], lat[3];
    for (double& b : bw) b = 1.0e9 + rng.NextDouble() * 99.0e9;
    for (double& l : lat) l = rng.NextDouble() * 20'000.0;
    if (bw[0] < bw[1]) std::swap(bw[0], bw[1]);
    if (bw[1] < bw[2]) std::swap(bw[1], bw[2]);
    if (bw[0] < bw[1]) std::swap(bw[0], bw[1]);
    if (lat[0] > lat[1]) std::swap(lat[0], lat[1]);
    if (lat[1] > lat[2]) std::swap(lat[1], lat[2]);
    if (lat[0] > lat[1]) std::swap(lat[0], lat[1]);
    config.same_rank_bytes_per_sec = bw[0];
    config.cross_rank_bytes_per_sec = bw[1];
    config.cross_host_bytes_per_sec = bw[2];
    config.same_rank_latency_ns = lat[0];
    config.cross_rank_latency_ns = lat[1];
    config.cross_host_latency_ns = lat[2];
    config.ranks_per_host = 1 + (rng.NextBounded(4));
    ASSERT_TRUE(config.Validate().ok());

    const FleetTopology topo(config, 8);
    const std::uint64_t bytes = rng.NextBounded(64ull << 20);
    const Nanos same = topo.HopTime(TransferHop::kSameRank, bytes);
    const Nanos rank = topo.HopTime(TransferHop::kCrossRank, bytes);
    const Nanos host = topo.HopTime(TransferHop::kCrossHost, bytes);
    EXPECT_LE(same, rank) << "trial " << trial << " bytes " << bytes;
    EXPECT_LE(rank, host) << "trial " << trial << " bytes " << bytes;
  }
}

TEST(TopologyTest, HopTimeMonotoneInBytes) {
  FleetTopologyConfig config;
  config.ranks_per_host = 2;
  const FleetTopology topo(config, 4);
  for (const TransferHop hop :
       {TransferHop::kSameRank, TransferHop::kCrossRank,
        TransferHop::kCrossHost}) {
    Nanos prev = -1.0;
    for (std::uint64_t bytes = 0; bytes <= (1 << 22); bytes += 1 << 20) {
      const Nanos t = topo.HopTime(hop, bytes);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

}  // namespace
}  // namespace updlrm::pim
