#include "pim/kernel_cost.h"

#include <gtest/gtest.h>

namespace updlrm::pim {
namespace {

EmbeddingKernelCostModel DefaultModel(std::uint32_t tasklets = 14) {
  DpuConfig dpu;
  dpu.num_tasklets = tasklets;
  return EmbeddingKernelCostModel(EmbeddingKernelCostParams{}, dpu,
                                  MramTimingModel{});
}

TEST(KernelCostTest, EmptyWorkIsFree) {
  const auto model = DefaultModel();
  EXPECT_EQ(model.KernelCycles(EmbeddingKernelWork{}), 0u);
}

TEST(KernelCostTest, BootCostIncluded) {
  const auto model = DefaultModel();
  const EmbeddingKernelWork w{
      .num_lookups = 1, .num_cache_reads = 0, .num_samples = 1,
      .row_bytes = 8};
  EXPECT_GT(model.KernelCycles(w), model.params().boot_cycles);
}

TEST(KernelCostTest, LinearInLookupsWhenIssueBound) {
  // Fig. 11's 8 B series: lookup time grows ~linearly with the number
  // of lookups (i.e. with average reduction).
  const auto model = DefaultModel();
  auto cycles = [&](std::uint64_t lookups) {
    return model.KernelCycles(EmbeddingKernelWork{
        .num_lookups = lookups, .num_cache_reads = 0, .num_samples = 64,
        .row_bytes = 8});
  };
  const double base = static_cast<double>(cycles(1600));
  const double six_x = static_cast<double>(cycles(9600));
  const double fixed = static_cast<double>(model.params().boot_cycles);
  EXPECT_NEAR((six_x - fixed) / (base - fixed), 6.0, 0.5);
}

TEST(KernelCostTest, CacheReadsCostLikeLookups) {
  const auto model = DefaultModel();
  const EmbeddingKernelWork lookups{
      .num_lookups = 1000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  const EmbeddingKernelWork cached{
      .num_lookups = 0, .num_cache_reads = 1000, .num_samples = 64,
      .row_bytes = 32};
  EXPECT_EQ(model.KernelCycles(lookups), model.KernelCycles(cached));
}

TEST(KernelCostTest, CachingFewerReadsIsCheaper) {
  // The whole point of partial-sum caching: fewer MRAM reads, less time.
  const auto model = DefaultModel();
  const EmbeddingKernelWork uncached{
      .num_lookups = 2000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  const EmbeddingKernelWork cached{
      .num_lookups = 800, .num_cache_reads = 400, .num_samples = 64,
      .row_bytes = 32};
  EXPECT_LT(model.KernelCycles(cached), model.KernelCycles(uncached));
}

TEST(KernelCostTest, WiderRowsCostMorePerRead) {
  const auto model = DefaultModel();
  auto per_read = [&](std::uint32_t row_bytes) {
    const EmbeddingKernelWork w{
        .num_lookups = 10'000, .num_cache_reads = 0, .num_samples = 64,
        .row_bytes = row_bytes};
    return static_cast<double>(model.KernelCycles(w)) / 10'000.0;
  };
  EXPECT_LT(per_read(8), per_read(32));
  EXPECT_LT(per_read(32), per_read(128));
}

TEST(KernelCostTest, FewerWiderReadsBeatManyNarrowOnes) {
  // §4.4: growing the lookup size from 8 B to 32 B cuts lookup time
  // because the same payload needs 4x fewer reads at ~equal latency.
  const auto model = DefaultModel();
  const EmbeddingKernelWork narrow{
      .num_lookups = 4000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 8};
  const EmbeddingKernelWork wide{
      .num_lookups = 1000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  EXPECT_LT(model.KernelCycles(wide), model.KernelCycles(narrow));
}

TEST(KernelCostTest, MoreTaskletsNeverSlower) {
  const EmbeddingKernelWork w{
      .num_lookups = 5000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  Cycles prev = ~0ULL;
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 11u, 14u, 24u}) {
    const Cycles c = DefaultModel(t).KernelCycles(w);
    EXPECT_LE(c, prev) << t;
    prev = c;
  }
}

TEST(KernelCostTest, WramHitsCheaperThanMramReads) {
  // The entire value of the pinned WRAM tier: a hit accumulates out of
  // WRAM with no MRAM DMA, so it must undercut the MRAM latency curve.
  const auto model = DefaultModel();
  const EmbeddingKernelWork from_mram{
      .num_lookups = 2000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  const EmbeddingKernelWork from_wram{
      .num_lookups = 0, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32, .num_wram_hits = 2000};
  EXPECT_LT(model.KernelCycles(from_wram), model.KernelCycles(from_mram));
}

TEST(KernelCostTest, WramHitsAndGatherRefsAddCycles) {
  const auto model = DefaultModel();
  const EmbeddingKernelWork base{
      .num_lookups = 1000, .num_cache_reads = 0, .num_samples = 64,
      .row_bytes = 32};
  EmbeddingKernelWork with_wram = base;
  with_wram.num_wram_hits = 500;
  EmbeddingKernelWork with_gather = base;
  with_gather.num_gather_refs = 500;
  EXPECT_GT(model.KernelCycles(with_wram), model.KernelCycles(base));
  EXPECT_GT(model.KernelCycles(with_gather), model.KernelCycles(base));
}

TEST(KernelCostTest, HotPathOnlyWorkStillPaysBoot) {
  // Work made purely of WRAM hits (no MRAM reads at all) is real work.
  const auto model = DefaultModel();
  const EmbeddingKernelWork w{
      .num_lookups = 0, .num_cache_reads = 0, .num_samples = 8,
      .row_bytes = 32, .num_wram_hits = 100};
  EXPECT_GT(model.KernelCycles(w), model.params().boot_cycles);
}

TEST(KernelCostTest, MaxWramCacheRowsShrinksWithRowWidth) {
  const auto model = DefaultModel();
  const std::uint32_t narrow = model.MaxWramCacheRows(8);
  const std::uint32_t wide = model.MaxWramCacheRows(128);
  EXPECT_GT(narrow, 0u);
  EXPECT_GT(narrow, wide);
  // A fit at the reported capacity must validate; one row over the
  // budget must not.
  EXPECT_TRUE(
      model.ValidateWramFit(128, static_cast<std::uint64_t>(wide) * 128)
          .ok());
  EXPECT_EQ(model
                .ValidateWramFit(
                    128, (static_cast<std::uint64_t>(wide) + 512) * 128)
                .code(),
            StatusCode::kCapacityExceeded);
}

TEST(KernelCostTest, WramFitValidation) {
  const auto model = DefaultModel();
  EXPECT_TRUE(model.ValidateWramFit(8).ok());
  EXPECT_TRUE(model.ValidateWramFit(128).ok());
  // An absurd row width blows the 64 KB WRAM across 14 tasklets.
  EXPECT_EQ(model.ValidateWramFit(16'384).code(),
            StatusCode::kCapacityExceeded);
}

TEST(KernelCostTest, ParamsValidation) {
  EmbeddingKernelCostParams params;
  params.index_chunk = 0;
  EXPECT_FALSE(params.Validate().ok());
  EXPECT_TRUE(EmbeddingKernelCostParams{}.Validate().ok());
}

}  // namespace
}  // namespace updlrm::pim
