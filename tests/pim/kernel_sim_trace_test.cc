// Per-tasklet timeline capture in kernel_sim: recording is pure
// observation (same makespan with or without a timeline), and the
// periodic engine's recorded retirement cycles match the exact-cycle
// reference bit for bit — finishes happen only at the two death
// transitions, which period jumps never replay.
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/dpu_config.h"
#include "pim/kernel_sim.h"
#include "pim/mram_timing.h"

namespace updlrm::pim {
namespace {

TEST(KernelSimTraceTest, PhaseFinishesMatchExactEngine) {
  Rng rng(0xfaceULL);
  for (int trial = 0; trial < 200; ++trial) {
    KernelPhase phase;
    phase.num_items = rng.NextBounded(600);
    phase.instr_per_item = 1 + rng.NextBounded(80);
    if (rng.NextBounded(4) != 0) {
      phase.dma_latency = rng.NextBounded(150);
      phase.dma_occupancy = rng.NextBounded(100);
    }
    const auto tasklets =
        static_cast<std::uint32_t>(1 + rng.NextBounded(24));
    const auto revolver =
        static_cast<std::uint32_t>(1 + rng.NextBounded(14));

    std::uint64_t instructions = 0;
    std::uint64_t dmas = 0;
    std::vector<Cycles> exact_finish;
    const Cycles exact =
        SimulatePhase(phase, tasklets, revolver, PhaseEngine::kExactCycle,
                      &instructions, &dmas, &exact_finish);
    std::vector<Cycles> fast_finish;
    const Cycles fast =
        SimulatePhase(phase, tasklets, revolver, PhaseEngine::kPeriodic,
                      &instructions, &dmas, &fast_finish);
    ASSERT_EQ(exact, fast);
    ASSERT_EQ(exact_finish.size(), tasklets);
    ASSERT_EQ(fast_finish, exact_finish)
        << "items=" << phase.num_items
        << " instr=" << phase.instr_per_item
        << " lat=" << phase.dma_latency
        << " occ=" << phase.dma_occupancy << " tasklets=" << tasklets
        << " revolver=" << revolver;
    // Every tasklet with work retires within the phase makespan.
    for (std::uint32_t t = 0; t < tasklets; ++t) {
      EXPECT_LE(exact_finish[t], exact) << "tasklet " << t;
    }
  }
}

TEST(KernelSimTraceTest, RecordingIsPureObservation) {
  std::uint64_t instructions = 0;
  std::uint64_t dmas = 0;
  const KernelPhase phase{500, 12, 48, 32};
  const Cycles bare = SimulatePhase(phase, 14, 11, PhaseEngine::kPeriodic,
                                    &instructions, &dmas);
  const std::uint64_t bare_instructions = instructions;
  instructions = 0;
  dmas = 0;
  std::vector<Cycles> finish;
  const Cycles traced = SimulatePhase(
      phase, 14, 11, PhaseEngine::kPeriodic, &instructions, &dmas, &finish);
  EXPECT_EQ(bare, traced);
  EXPECT_EQ(bare_instructions, instructions);
}

TEST(KernelSimTraceTest, FullKernelTimelineMatchesExactEngine) {
  const DpuConfig dpu;
  const MramTimingModel mram;
  EmbeddingKernelCostParams params;
  EmbeddingKernelWork work;
  work.num_lookups = 1200;
  work.num_cache_reads = 300;
  work.num_samples = 64;
  work.row_bytes = 128;
  work.num_wram_hits = 150;
  work.num_gather_refs = 90;

  KernelTimeline fast_tl;
  const KernelSimResult fast = SimulateEmbeddingKernel(
      dpu, mram, params, work, PhaseEngine::kPeriodic, &fast_tl);
  KernelTimeline exact_tl;
  const KernelSimResult exact = SimulateEmbeddingKernel(
      dpu, mram, params, work, PhaseEngine::kExactCycle, &exact_tl);

  EXPECT_EQ(fast.makespan, exact.makespan);
  EXPECT_EQ(fast_tl.boot_cycles, exact_tl.boot_cycles);
  EXPECT_EQ(fast_tl.tasklets, exact_tl.tasklets);
  ASSERT_EQ(fast_tl.phases.size(), exact_tl.phases.size());
  ASSERT_EQ(fast_tl.phases.size(), kEmbeddingKernelNumPhases);
  for (std::size_t p = 0; p < fast_tl.phases.size(); ++p) {
    const PhaseTrace& f = fast_tl.phases[p];
    const PhaseTrace& e = exact_tl.phases[p];
    EXPECT_EQ(f.start, e.start) << kEmbeddingKernelPhaseNames[p];
    EXPECT_EQ(f.makespan, e.makespan) << kEmbeddingKernelPhaseNames[p];
    EXPECT_EQ(f.num_items, e.num_items) << kEmbeddingKernelPhaseNames[p];
    EXPECT_EQ(f.dma_busy, e.dma_busy) << kEmbeddingKernelPhaseNames[p];
    EXPECT_EQ(f.tasklet_finish, e.tasklet_finish)
        << kEmbeddingKernelPhaseNames[p];
    EXPECT_EQ(f.tasklet_items, e.tasklet_items)
        << kEmbeddingKernelPhaseNames[p];
  }
}

TEST(KernelSimTraceTest, TimelineInvariantsHold) {
  const DpuConfig dpu;
  const MramTimingModel mram;
  EmbeddingKernelCostParams params;
  EmbeddingKernelWork work;
  work.num_lookups = 777;
  work.num_cache_reads = 111;
  work.num_samples = 32;
  work.row_bytes = 64;

  KernelTimeline tl;
  const KernelSimResult result = SimulateEmbeddingKernel(
      dpu, mram, params, work, PhaseEngine::kPeriodic, &tl);
  ASSERT_EQ(tl.phases.size(), kEmbeddingKernelNumPhases);
  EXPECT_EQ(tl.boot_cycles, params.boot_cycles);

  // Phases tile [boot, makespan): each starts where the previous
  // ended, and the last one ends at the kernel makespan.
  Cycles cursor = tl.boot_cycles;
  std::uint64_t items = 0;
  for (std::size_t p = 0; p < tl.phases.size(); ++p) {
    const PhaseTrace& phase = tl.phases[p];
    EXPECT_EQ(phase.start, cursor) << kEmbeddingKernelPhaseNames[p];
    cursor += phase.makespan;
    items += phase.num_items;
    EXPECT_LE(phase.dma_busy, phase.makespan)
        << kEmbeddingKernelPhaseNames[p];
    // Round-robin item distribution sums back to the phase total.
    EXPECT_EQ(std::accumulate(phase.tasklet_items.begin(),
                              phase.tasklet_items.end(), std::uint64_t{0}),
              phase.num_items)
        << kEmbeddingKernelPhaseNames[p];
    for (std::uint32_t t = 0; t < tl.tasklets; ++t) {
      EXPECT_LE(phase.tasklet_finish[t], phase.makespan)
          << kEmbeddingKernelPhaseNames[p] << " tasklet " << t;
      if (phase.tasklet_items[t] == 0) {
        EXPECT_EQ(phase.tasklet_finish[t], 0u)
            << kEmbeddingKernelPhaseNames[p] << " tasklet " << t;
      }
    }
  }
  EXPECT_EQ(cursor, result.makespan);
  EXPECT_GT(items, 0u);

  // A null timeline produces the same simulated result.
  const KernelSimResult bare =
      SimulateEmbeddingKernel(dpu, mram, params, work);
  EXPECT_EQ(bare.makespan, result.makespan);
  EXPECT_EQ(bare.instructions_issued, result.instructions_issued);
  EXPECT_EQ(bare.dma_transfers, result.dma_transfers);
}

}  // namespace
}  // namespace updlrm::pim
