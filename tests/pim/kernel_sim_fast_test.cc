// Property tests for the periodic phase engine: on randomized phases it
// must reproduce the reference cycle-by-cycle simulator bit for bit —
// same makespan, same instruction count, same DMA count.
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/dpu_config.h"
#include "pim/kernel_sim.h"
#include "pim/mram_timing.h"

namespace updlrm::pim {
namespace {

struct PhaseRun {
  Cycles makespan = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dmas = 0;
};

PhaseRun RunOnce(const KernelPhase& phase, std::uint32_t tasklets,
             std::uint32_t revolver_depth, PhaseEngine engine) {
  PhaseRun run;
  run.makespan = SimulatePhase(phase, tasklets, revolver_depth, engine,
                               &run.instructions, &run.dmas);
  return run;
}

void ExpectEnginesAgree(const KernelPhase& phase, std::uint32_t tasklets,
                        std::uint32_t revolver_depth) {
  const PhaseRun exact =
      RunOnce(phase, tasklets, revolver_depth, PhaseEngine::kExactCycle);
  const PhaseRun fast =
      RunOnce(phase, tasklets, revolver_depth, PhaseEngine::kPeriodic);
  EXPECT_EQ(exact.makespan, fast.makespan)
      << "items=" << phase.num_items << " instr=" << phase.instr_per_item
      << " lat=" << phase.dma_latency << " occ=" << phase.dma_occupancy
      << " tasklets=" << tasklets << " revolver=" << revolver_depth;
  EXPECT_EQ(exact.instructions, fast.instructions);
  EXPECT_EQ(exact.dmas, fast.dmas);
}

TEST(KernelSimFastTest, RandomizedPhasesMatchExactEngine) {
  Rng rng(0x5eedULL);
  for (int trial = 0; trial < 400; ++trial) {
    KernelPhase phase;
    phase.num_items = rng.NextBounded(600);
    phase.instr_per_item = 1 + rng.NextBounded(80);
    if (rng.NextBounded(4) != 0) {  // 3/4 of phases carry a DMA
      phase.dma_latency = rng.NextBounded(150);
      phase.dma_occupancy = rng.NextBounded(100);
    }
    const auto tasklets =
        static_cast<std::uint32_t>(1 + rng.NextBounded(24));
    const auto revolver =
        static_cast<std::uint32_t>(1 + rng.NextBounded(14));
    ExpectEnginesAgree(phase, tasklets, revolver);
  }
}

TEST(KernelSimFastTest, EdgeShapesMatchExactEngine) {
  // Shapes where the steady state is degenerate: single tasklet, more
  // tasklets than items, occupancy-bound engine tails, zero-latency
  // DMAs, instruction-bound phases with no DMA at all.
  ExpectEnginesAgree({1, 1, 0, 0}, 1, 11);
  ExpectEnginesAgree({3, 5, 77, 64}, 16, 11);
  ExpectEnginesAgree({1000, 1, 1, 1}, 1, 1);
  ExpectEnginesAgree({500, 2, 0, 90}, 8, 11);   // occupancy only
  ExpectEnginesAgree({500, 2, 90, 0}, 8, 11);   // latency only
  ExpectEnginesAgree({2048, 60, 0, 0}, 12, 11); // pure compute
  ExpectEnginesAgree({257, 16, 48, 32}, 24, 14);
}

TEST(KernelSimFastTest, LargePhaseCountsAreExact) {
  // The jump path scales the counters analytically; they must still
  // land on items * instr_per_item and one DMA per item.
  KernelPhase phase{100'000, 72, 48, 32};
  const PhaseRun fast = RunOnce(phase, 16, 11, PhaseEngine::kPeriodic);
  EXPECT_EQ(fast.instructions, 100'000u * 72u);
  EXPECT_EQ(fast.dmas, 100'000u);
  EXPECT_GE(fast.makespan, 100'000u * 72u / 16u);
}

TEST(KernelSimFastTest, FullKernelMatchesExactEngine) {
  const DpuConfig dpu;
  const MramTimingModel mram;
  EmbeddingKernelCostParams params;
  EmbeddingKernelWork work;
  work.num_lookups = 1200;
  work.num_cache_reads = 300;
  work.num_samples = 64;
  work.row_bytes = 128;
  const KernelSimResult fast = SimulateEmbeddingKernel(
      dpu, mram, params, work, PhaseEngine::kPeriodic);
  const KernelSimResult exact = SimulateEmbeddingKernel(
      dpu, mram, params, work, PhaseEngine::kExactCycle);
  EXPECT_EQ(fast.makespan, exact.makespan);
  EXPECT_EQ(fast.instructions_issued, exact.instructions_issued);
  EXPECT_EQ(fast.dma_transfers, exact.dma_transfers);
  EXPECT_DOUBLE_EQ(fast.issue_utilization, exact.issue_utilization);
}

}  // namespace
}  // namespace updlrm::pim
