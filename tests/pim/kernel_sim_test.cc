#include "pim/kernel_sim.h"

#include <gtest/gtest.h>

#include <tuple>

namespace updlrm::pim {
namespace {

DpuConfig ConfigWithTasklets(std::uint32_t t) {
  DpuConfig config;
  config.num_tasklets = t;
  return config;
}

EmbeddingKernelWork Work(std::uint64_t lookups, std::uint32_t row_bytes,
                         std::uint64_t samples = 64) {
  return EmbeddingKernelWork{.num_lookups = lookups,
                             .num_cache_reads = 0,
                             .num_samples = samples,
                             .row_bytes = row_bytes};
}

TEST(KernelSimTest, EmptyWorkIsFree) {
  const auto result = SimulateEmbeddingKernel(
      ConfigWithTasklets(14), MramTimingModel{},
      EmbeddingKernelCostParams{}, EmbeddingKernelWork{});
  EXPECT_EQ(result.makespan, 0u);
  EXPECT_EQ(result.instructions_issued, 0u);
}

TEST(KernelSimTest, CountsInstructionsAndDmas) {
  const EmbeddingKernelCostParams params;
  const auto work = Work(100, 32, 16);
  const auto result = SimulateEmbeddingKernel(
      ConfigWithTasklets(14), MramTimingModel{}, params, work);
  // Phase 1: ceil(100/64)=2 chunks x 16 instr; phase 2: 100 x
  // (56 + 2*8); phase 3: 16 x 32.
  EXPECT_EQ(result.instructions_issued, 2u * 16 + 100u * 72 + 16u * 32);
  EXPECT_EQ(result.dma_transfers, 2u + 100u + 16u);
  EXPECT_GT(result.makespan, params.boot_cycles);
}

TEST(KernelSimTest, FourteenTaskletsNearFullUtilization) {
  // §4.4's masking claim, checked by execution: with 14 tasklets and an
  // instruction-heavy kernel, the pipeline issues nearly every cycle.
  const auto result = SimulateEmbeddingKernel(
      ConfigWithTasklets(14), MramTimingModel{},
      EmbeddingKernelCostParams{}, Work(2000, 32));
  // Exclude the boot cycles from the utilization estimate.
  const double busy =
      static_cast<double>(result.instructions_issued) /
      static_cast<double>(result.makespan -
                          EmbeddingKernelCostParams{}.boot_cycles);
  EXPECT_GT(busy, 0.85);
}

TEST(KernelSimTest, SingleTaskletBoundByRevolver) {
  const auto result = SimulateEmbeddingKernel(
      ConfigWithTasklets(1), MramTimingModel{},
      EmbeddingKernelCostParams{}, Work(200, 8, 8));
  // One tasklet can issue at most once per revolver_depth (11) cycles.
  EXPECT_LT(result.issue_utilization, 1.0 / 10.0);
}

class SimVsAnalytic
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(SimVsAnalytic, AnalyticModelIsATightLowerBound) {
  const auto [tasklets, row_bytes, lookups] = GetParam();
  const DpuConfig dpu = ConfigWithTasklets(tasklets);
  const MramTimingModel mram;
  const EmbeddingKernelCostParams params;
  const auto work = Work(lookups, row_bytes);

  const EmbeddingKernelCostModel analytic(params, dpu, mram);
  const Cycles predicted = analytic.KernelCycles(work);
  const auto sim = SimulateEmbeddingKernel(dpu, mram, params, work);

  // The analytic makespan is a max of lower bounds, so execution can
  // only be slower — but it should not be much slower (tail effects,
  // imperfect overlap at phase boundaries).
  EXPECT_GE(static_cast<double>(sim.makespan),
            0.98 * static_cast<double>(predicted));
  EXPECT_LE(static_cast<double>(sim.makespan),
            1.45 * static_cast<double>(predicted));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SimVsAnalytic,
    ::testing::Values(
        std::make_tuple(14u, 8u, 1600ull),    // Fig. 11's 8 B regime
        std::make_tuple(14u, 32u, 1000ull),   // the Nc <= 8 sweet spot
        std::make_tuple(14u, 128u, 400ull),   // wide reads
        std::make_tuple(11u, 32u, 1000ull),   // exactly revolver depth
        std::make_tuple(4u, 32u, 500ull),     // under-subscribed
        std::make_tuple(1u, 8u, 200ull),      // serial execution
        std::make_tuple(24u, 64u, 800ull)),   // hardware max tasklets
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(KernelSimTest, MoreTaskletsNeverSlower) {
  const MramTimingModel mram;
  const EmbeddingKernelCostParams params;
  const auto work = Work(800, 32);
  Cycles prev = ~0ULL;
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 11u, 14u, 24u}) {
    const auto sim =
        SimulateEmbeddingKernel(ConfigWithTasklets(t), mram, params, work);
    EXPECT_LE(sim.makespan, prev + prev / 50) << t << " tasklets";
    prev = sim.makespan;
  }
}

}  // namespace
}  // namespace updlrm::pim
