#include "pim/transfer.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::pim {
namespace {

HostTransferParams FastParams() {
  HostTransferParams p;
  p.push_bytes_per_sec_per_rank = 1.0e9;
  p.pull_bytes_per_sec_per_rank = 0.5e9;
  p.serial_bytes_per_sec = 0.1e9;
  p.transfer_launch_ns = 1000.0;
  p.kernel_launch_ns = 2000.0;
  return p;
}

TEST(TransferTest, EqualBuffersTakeParallelPath) {
  const HostTransferModel model(FastParams(), 128, 64);
  EXPECT_EQ(model.num_ranks(), 2u);
  const std::vector<std::uint64_t> bytes(128, 1000);
  // Each rank streams 64 * 1000 B at 1 GB/s => 64 us + 1 us launch.
  EXPECT_NEAR(model.PushTime(bytes, false), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, RaggedPaddedToMax) {
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 100);
  bytes[3] = 1000;
  // Padded: every DPU costs the 1000-byte max.
  EXPECT_NEAR(model.PushTime(bytes, true), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, RaggedWithoutPaddingIsSequential) {
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 100);
  bytes[3] = 1000;
  const std::uint64_t total = 127 * 100 + 1000;
  EXPECT_NEAR(model.PushTime(bytes, false),
              1000.0 + static_cast<double>(total) / 0.1, 1.0);
}

TEST(TransferTest, SequentialSlowerThanPadded) {
  // The engine pads precisely because the sequential path is punitive.
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 900);
  bytes[5] = 1000;
  EXPECT_LT(model.PushTime(bytes, true), model.PushTime(bytes, false));
}

TEST(TransferTest, PullUsesPullBandwidth) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(64, 1000);
  EXPECT_NEAR(model.PullTime(bytes, false), 1000.0 + 128'000.0, 1.0);
}

TEST(TransferTest, ZeroBytesIsFree) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(64, 0);
  EXPECT_DOUBLE_EQ(model.PushTime(bytes, true), 0.0);
  EXPECT_DOUBLE_EQ(model.PullTime(bytes, true), 0.0);
}

TEST(TransferTest, EmptySpanIsFreeNoLaunch) {
  // A transfer that moves no bytes must not even pay the launch cost.
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> empty;
  EXPECT_DOUBLE_EQ(model.PushTime(empty, true), 0.0);
  EXPECT_DOUBLE_EQ(model.PushTime(empty, false), 0.0);
  EXPECT_DOUBLE_EQ(model.PullTime(empty, true), 0.0);
  EXPECT_DOUBLE_EQ(model.PullTime(empty, false), 0.0);
}

TEST(TransferTest, AllZeroUnpaddedIsFreeNoLaunch) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(64, 0);
  EXPECT_DOUBLE_EQ(model.PushTime(bytes, false), 0.0);
  EXPECT_DOUBLE_EQ(model.PullTime(bytes, false), 0.0);
}

TEST(TransferTest, ZeroByteDpuDoesNotForceSequentialPath) {
  // §2.2's equal-buffer rule applies to buffers that exist: a DPU with
  // nothing to transfer is absent from the matrix, so the remaining
  // equal buffers still go parallel without padding.
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 1000);
  bytes[7] = 0;
  EXPECT_NEAR(model.PushTime(bytes, false), 1000.0 + 64'000.0, 1.0);
  // Genuinely ragged nonzero buffers still fall back to sequential.
  bytes[7] = 500;
  const std::uint64_t total = 127 * 1000 + 500;
  EXPECT_NEAR(model.PushTime(bytes, false),
              1000.0 + static_cast<double>(total) / 0.1, 1.0);
}

TEST(TransferTest, BroadcastScalesWithRankPopulation) {
  const HostTransferModel model(FastParams(), 128, 64);
  // 64 copies of 1000 B per rank at 1 GB/s.
  EXPECT_NEAR(model.BroadcastTime(1000), 1000.0 + 64'000.0, 1.0);
  EXPECT_DOUBLE_EQ(model.BroadcastTime(0), 0.0);
}

TEST(TransferTest, PartialLastRank) {
  // 96 DPUs over 64-DPU ranks: rank 0 full, rank 1 half; the full rank
  // bounds the parallel transfer.
  const HostTransferModel model(FastParams(), 96, 64);
  EXPECT_EQ(model.num_ranks(), 2u);
  const std::vector<std::uint64_t> bytes(96, 1000);
  EXPECT_NEAR(model.PushTime(bytes, false), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, KernelLaunchOverheadExposed) {
  const HostTransferModel model(FastParams(), 64, 64);
  EXPECT_DOUBLE_EQ(model.KernelLaunchOverhead(), 2000.0);
}

TEST(TransferTest, ParamValidation) {
  HostTransferParams p = FastParams();
  p.serial_bytes_per_sec = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FastParams();
  p.transfer_launch_ns = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  EXPECT_TRUE(FastParams().Validate().ok());
}

TEST(TransferPlanTest, EmptyOrZeroInputNeverLaunches) {
  const HostTransferModel model(FastParams(), 128, 64);
  const std::vector<std::uint32_t> one_group = {0, 128};
  const std::vector<std::uint64_t> zeros(128, 0);
  const TransferPlan plan = model.PlanPush(zeros, one_group);
  EXPECT_DOUBLE_EQ(plan.time, 0.0);
  EXPECT_EQ(plan.launches, 0u);
  EXPECT_EQ(plan.streamed_bytes, 0u);
}

TEST(TransferPlanTest, EqualBuffersMatchClassicPaddedCall) {
  const HostTransferModel model(FastParams(), 128, 64);
  const std::vector<std::uint32_t> one_group = {0, 128};
  const std::vector<std::uint64_t> bytes(128, 1000);
  const TransferPlan plan = model.PlanPush(bytes, one_group);
  EXPECT_EQ(plan.path, TransferPlan::Path::kCoalescedPadded);
  EXPECT_EQ(plan.launches, 1u);
  EXPECT_NEAR(plan.time, model.PushTime(bytes, true), 1.0);
}

TEST(TransferPlanTest, ZeroByteDpusNeverPad) {
  // Half the DPUs carry nothing; the classic padded call pads them
  // anyway, the planner's matrix simply omits them.
  const HostTransferModel model(FastParams(), 128, 64);
  const std::vector<std::uint32_t> one_group = {0, 128};
  std::vector<std::uint64_t> bytes(128, 0);
  for (std::uint32_t d = 0; d < 64; d += 2) bytes[d] = 1000;
  const TransferPlan plan = model.PlanPush(bytes, one_group);
  EXPECT_EQ(plan.path, TransferPlan::Path::kCoalescedPadded);
  // Rank 0 streams 32 participating buffers, not 64 padded ones.
  EXPECT_NEAR(plan.time, 1000.0 + 32'000.0, 1.0);
  EXPECT_LE(plan.time, model.PushTime(bytes, true));
}

TEST(TransferPlanTest, HeterogeneousGroupsPreferPerGroupPadding) {
  // Both groups share one rank and group 0's buffers are 100x group
  // 1's: one call padded to the call-wide max streams 128 * 100'000 B,
  // while two per-group calls pay an extra launch but pad group 1 only
  // to its own 1000-byte max. (Across *different* ranks the distinction
  // vanishes — ranks stream concurrently, so the big group bounds the
  // call either way.)
  const HostTransferModel model(FastParams(), 128, 128);
  const std::vector<std::uint32_t> groups = {0, 64, 128};
  std::vector<std::uint64_t> bytes(128, 1000);
  for (std::uint32_t d = 0; d < 64; ++d) bytes[d] = 100'000;
  const TransferPlan plan = model.PlanPush(bytes, groups);
  EXPECT_EQ(plan.path, TransferPlan::Path::kPerGroupPadded);
  EXPECT_EQ(plan.launches, 2u);
  const TransferPlan single =
      model.PlanPush(bytes, std::vector<std::uint32_t>{0, 128});
  EXPECT_LT(plan.time, single.time);
}

TEST(TransferPlanTest, NeverWorseThanClassicPaths) {
  const HostTransferModel model(FastParams(), 128, 64);
  const std::vector<std::uint32_t> one_group = {0, 128};
  std::vector<std::uint64_t> bytes(128);
  for (std::uint32_t d = 0; d < 128; ++d) {
    bytes[d] = (d * 2654435761u) % 5000;  // deterministic ragged mix
  }
  const TransferPlan plan = model.PlanPush(bytes, one_group);
  EXPECT_LE(plan.time, model.PushTime(bytes, true) + 1e-9);
  EXPECT_LE(plan.time, model.PushTime(bytes, false) + 1e-9);
  const TransferPlan pull = model.PlanPull(bytes, one_group);
  EXPECT_LE(pull.time, model.PullTime(bytes, true) + 1e-9);
  EXPECT_LE(pull.time, model.PullTime(bytes, false) + 1e-9);
}

TEST(TransferDeathTest, WrongVectorSizeAborts) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(63, 100);
  EXPECT_DEATH((void)model.PushTime(bytes, true), "every DPU");
}

}  // namespace
}  // namespace updlrm::pim
