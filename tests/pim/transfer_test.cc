#include "pim/transfer.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::pim {
namespace {

HostTransferParams FastParams() {
  HostTransferParams p;
  p.push_bytes_per_sec_per_rank = 1.0e9;
  p.pull_bytes_per_sec_per_rank = 0.5e9;
  p.serial_bytes_per_sec = 0.1e9;
  p.transfer_launch_ns = 1000.0;
  p.kernel_launch_ns = 2000.0;
  return p;
}

TEST(TransferTest, EqualBuffersTakeParallelPath) {
  const HostTransferModel model(FastParams(), 128, 64);
  EXPECT_EQ(model.num_ranks(), 2u);
  const std::vector<std::uint64_t> bytes(128, 1000);
  // Each rank streams 64 * 1000 B at 1 GB/s => 64 us + 1 us launch.
  EXPECT_NEAR(model.PushTime(bytes, false), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, RaggedPaddedToMax) {
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 100);
  bytes[3] = 1000;
  // Padded: every DPU costs the 1000-byte max.
  EXPECT_NEAR(model.PushTime(bytes, true), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, RaggedWithoutPaddingIsSequential) {
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 100);
  bytes[3] = 1000;
  const std::uint64_t total = 127 * 100 + 1000;
  EXPECT_NEAR(model.PushTime(bytes, false),
              1000.0 + static_cast<double>(total) / 0.1, 1.0);
}

TEST(TransferTest, SequentialSlowerThanPadded) {
  // The engine pads precisely because the sequential path is punitive.
  const HostTransferModel model(FastParams(), 128, 64);
  std::vector<std::uint64_t> bytes(128, 900);
  bytes[5] = 1000;
  EXPECT_LT(model.PushTime(bytes, true), model.PushTime(bytes, false));
}

TEST(TransferTest, PullUsesPullBandwidth) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(64, 1000);
  EXPECT_NEAR(model.PullTime(bytes, false), 1000.0 + 128'000.0, 1.0);
}

TEST(TransferTest, ZeroBytesIsFree) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(64, 0);
  EXPECT_DOUBLE_EQ(model.PushTime(bytes, true), 0.0);
  EXPECT_DOUBLE_EQ(model.PullTime(bytes, true), 0.0);
}

TEST(TransferTest, BroadcastScalesWithRankPopulation) {
  const HostTransferModel model(FastParams(), 128, 64);
  // 64 copies of 1000 B per rank at 1 GB/s.
  EXPECT_NEAR(model.BroadcastTime(1000), 1000.0 + 64'000.0, 1.0);
  EXPECT_DOUBLE_EQ(model.BroadcastTime(0), 0.0);
}

TEST(TransferTest, PartialLastRank) {
  // 96 DPUs over 64-DPU ranks: rank 0 full, rank 1 half; the full rank
  // bounds the parallel transfer.
  const HostTransferModel model(FastParams(), 96, 64);
  EXPECT_EQ(model.num_ranks(), 2u);
  const std::vector<std::uint64_t> bytes(96, 1000);
  EXPECT_NEAR(model.PushTime(bytes, false), 1000.0 + 64'000.0, 1.0);
}

TEST(TransferTest, KernelLaunchOverheadExposed) {
  const HostTransferModel model(FastParams(), 64, 64);
  EXPECT_DOUBLE_EQ(model.KernelLaunchOverhead(), 2000.0);
}

TEST(TransferTest, ParamValidation) {
  HostTransferParams p = FastParams();
  p.serial_bytes_per_sec = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FastParams();
  p.transfer_launch_ns = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  EXPECT_TRUE(FastParams().Validate().ok());
}

TEST(TransferDeathTest, WrongVectorSizeAborts) {
  const HostTransferModel model(FastParams(), 64, 64);
  const std::vector<std::uint64_t> bytes(63, 100);
  EXPECT_DEATH((void)model.PushTime(bytes, true), "every DPU");
}

}  // namespace
}  // namespace updlrm::pim
