#include "pim/pipeline.h"

#include <gtest/gtest.h>

#include <array>

namespace updlrm::pim {
namespace {

DpuConfig ConfigWithTasklets(std::uint32_t t) {
  DpuConfig config;
  config.num_tasklets = t;
  return config;
}

TEST(PipelineTest, EmptyWorkloadIsFree) {
  const PipelineModel model(ConfigWithTasklets(14));
  EXPECT_EQ(model.Makespan(KernelWorkload{}), 0u);
}

TEST(PipelineTest, SingleTaskletIsRevolverBound) {
  // One tasklet can issue only every revolver_depth (11) cycles, so the
  // scaled issue bound dominates even the serialized DMA latency.
  const PipelineModel model(ConfigWithTasklets(1));
  const KernelWorkload w{.num_items = 100,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  EXPECT_EQ(model.Makespan(w), 100u * 50 * 11);
}

TEST(PipelineTest, FourteenTaskletsMaskMramLatency) {
  // §4.4: with 14 tasklets the pipeline masks the MRAM read latency;
  // the makespan approaches the pure instruction-issue bound.
  const PipelineModel model(ConfigWithTasklets(14));
  const KernelWorkload w{.num_items = 1400,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  EXPECT_EQ(model.Makespan(w), 1400u * 50);
}

TEST(PipelineTest, MakespanMonotoneInTaskletCount) {
  const KernelWorkload w{.num_items = 1000,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  Cycles prev = ~0ULL;
  for (std::uint32_t t = 1; t <= 24; ++t) {
    const Cycles span = PipelineModel(ConfigWithTasklets(t)).Makespan(w);
    EXPECT_LE(span, prev) << t << " tasklets";
    prev = span;
  }
}

TEST(PipelineTest, SaturatesNearElevenTasklets) {
  // The revolver depth is 11: beyond ~11 tasklets the gain flattens.
  const KernelWorkload w{.num_items = 1100,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  const Cycles at11 = PipelineModel(ConfigWithTasklets(11)).Makespan(w);
  const Cycles at14 = PipelineModel(ConfigWithTasklets(14)).Makespan(w);
  const Cycles at24 = PipelineModel(ConfigWithTasklets(24)).Makespan(w);
  EXPECT_EQ(at14, at24);
  EXPECT_LE(at14, at11);
  EXPECT_GE(static_cast<double>(at14), 0.8 * static_cast<double>(at11));
}

TEST(PipelineTest, DmaEngineBoundDominatesForHugeTransfers) {
  // When per-item occupancy exceeds compute, the single DMA engine is
  // the bottleneck regardless of tasklets.
  const PipelineModel model(ConfigWithTasklets(24));
  const KernelWorkload w{.num_items = 100,
                         .instr_cycles_per_item = 10,
                         .dma_latency_per_item = 900,
                         .dma_occupancy_per_item = 840};
  EXPECT_EQ(model.Makespan(w), 100u * 840);
}

TEST(PipelineTest, FewTaskletsScaleIssueBound) {
  // With T < revolver depth, utilization caps at T/11.
  const PipelineModel model(ConfigWithTasklets(2));
  const KernelWorkload w{.num_items = 220,
                         .instr_cycles_per_item = 10,
                         .dma_latency_per_item = 0,
                         .dma_occupancy_per_item = 0};
  // issue bound: 220 * 10 * (11/2) = 12100; latency bound: 110 * 10.
  EXPECT_EQ(model.Makespan(w), 12'100u);
}

TEST(PipelineTest, PhasesAccumulate) {
  const PipelineModel model(ConfigWithTasklets(14));
  const KernelWorkload a{.num_items = 100,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  const KernelWorkload b{.num_items = 64,
                         .instr_cycles_per_item = 32,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  const std::array<KernelWorkload, 2> phases = {a, b};
  EXPECT_EQ(model.Makespan(phases),
            model.Makespan(a) + model.Makespan(b));
}

class PipelineScaling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineScaling, LinearInItemsWhenIssueBound) {
  const PipelineModel model(ConfigWithTasklets(14));
  const std::uint64_t n = GetParam();
  const KernelWorkload w{.num_items = n,
                         .instr_cycles_per_item = 50,
                         .dma_latency_per_item = 84,
                         .dma_occupancy_per_item = 24};
  EXPECT_EQ(model.Makespan(w), n * 50);
}

INSTANTIATE_TEST_SUITE_P(ItemCounts, PipelineScaling,
                         ::testing::Values(140, 1'400, 14'000, 140'000));

}  // namespace
}  // namespace updlrm::pim
