#include "baselines/systems.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace updlrm::baselines {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
};

Fixture MakeFixture(double zipf_alpha = 1.0) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 2'000;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;

  trace::DatasetSpec spec;
  spec.name = "base";
  spec.num_items = 2'000;
  spec.avg_reduction = 20.0;
  spec.zipf_alpha = zipf_alpha;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.0;
  spec.num_hot_items = 0;
  spec.seed = 77;
  trace::TraceGeneratorOptions options;
  options.num_samples = 128;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();
  return f;
}

TEST(Table2Test, FourSystemsListed) {
  const auto rows = Table2();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NE(rows[0].implementation.find("DLRM-CPU"), std::string::npos);
  EXPECT_NE(rows[3].implementation.find("UpDLRM"), std::string::npos);
}

TEST(DlrmCpuTest, EmbeddingDominatedAtHighPooling) {
  // The motivating observation: at pooling 20+ over DRAM-resident
  // tables, the embedding layer dominates CPU inference.
  Fixture f = MakeFixture();
  // Make the table working set exceed the LLC so gathers hit DRAM.
  f.config.rows_per_table = 2'000;
  const DlrmCpu cpu(f.config, f.trace);
  const auto report = cpu.RunBatch({0, 64});
  EXPECT_GT(report.embedding, 0.0);
  EXPECT_GT(report.dense_compute, 0.0);
  EXPECT_DOUBLE_EQ(report.total, report.embedding + report.dense_compute);
}

TEST(DlrmCpuTest, RunAllAggregates) {
  Fixture f = MakeFixture();
  const DlrmCpu cpu(f.config, f.trace);
  const auto report = cpu.RunAll(64);
  EXPECT_EQ(report.num_batches, 2u);
  EXPECT_EQ(report.num_samples, 128u);
  EXPECT_GT(report.AvgBatchTotal(), 0.0);
  EXPECT_GT(report.AvgBatchEmbedding(), 0.0);
}

TEST(DlrmHybridTest, SlowerThanCpuOnlyAtSmallBatch) {
  // §4.2: DLRM-Hybrid performs the worst — the CPU still executes every
  // lookup, and PCIe + launch + sync overheads come on top.
  Fixture f = MakeFixture();
  const DlrmCpu cpu(f.config, f.trace);
  const DlrmHybrid hybrid(f.config, f.trace);
  EXPECT_GT(hybrid.RunBatch({0, 64}).total, cpu.RunBatch({0, 64}).total);
}

TEST(DlrmHybridTest, EmbeddingCostEqualsCpuBaseline) {
  Fixture f = MakeFixture();
  const DlrmCpu cpu(f.config, f.trace);
  const DlrmHybrid hybrid(f.config, f.trace);
  EXPECT_DOUBLE_EQ(hybrid.RunBatch({0, 64}).embedding,
                   cpu.RunBatch({0, 64}).embedding);
}

TEST(FaeTest, HotFractionGrowsWithSkew) {
  Fixture flat = MakeFixture(0.0);
  Fixture skewed = MakeFixture(1.2);
  FaeOptions options;
  options.hot_cache_bytes = 2 * 200 * 32;  // 200 hot rows per table
  auto fae_flat = Fae::Create(flat.config, flat.trace, options);
  auto fae_skew = Fae::Create(skewed.config, skewed.trace, options);
  ASSERT_TRUE(fae_flat.ok() && fae_skew.ok());
  EXPECT_GT((*fae_skew)->HotLookupFraction(),
            (*fae_flat)->HotLookupFraction() + 0.1);
}

TEST(FaeTest, FasterThanHybridOnSkewedTrace) {
  Fixture f = MakeFixture(1.2);
  const DlrmHybrid hybrid(f.config, f.trace);
  FaeOptions options;
  options.hot_cache_bytes = 2 * 500 * 32;
  auto fae = Fae::Create(f.config, f.trace, options);
  ASSERT_TRUE(fae.ok());
  EXPECT_LT((*fae)->RunBatch({0, 64}).total,
            hybrid.RunBatch({0, 64}).total);
}

TEST(FaeTest, CacheCapacityBoundsHotRows) {
  Fixture f = MakeFixture(1.0);
  FaeOptions options;
  options.hot_cache_bytes = 2 * 100 * 32;  // 100 rows x 32 B x 2 tables
  auto fae = Fae::Create(f.config, f.trace, options);
  ASSERT_TRUE(fae.ok());
  EXPECT_EQ((*fae)->hot_rows_per_table(), 100u);
}

TEST(FaeTest, FullCacheServesAlmostEverything) {
  Fixture f = MakeFixture(1.0);
  FaeOptions options;
  options.hot_cache_bytes = 1ULL << 30;  // everything fits
  auto fae = Fae::Create(f.config, f.trace, options);
  ASSERT_TRUE(fae.ok());
  // The per-table budget exceeds the table: every profiled row is hot.
  EXPECT_GE((*fae)->hot_rows_per_table(), f.config.rows_per_table);
  // The hot set comes from held-out profiling on the first half of the
  // trace, so tail items first touched in the second half stay cold —
  // but nearly all lookup *volume* is hot.
  EXPECT_GT((*fae)->HotLookupFraction(), 0.8);
  EXPECT_LT((*fae)->HotLookupFraction(), 1.0);
}

TEST(FaeTest, ColdLlcFractionIsAFraction) {
  Fixture f = MakeFixture(1.0);
  FaeOptions options;
  options.hot_cache_bytes = 2 * 50 * 32;  // tiny GPU cache
  auto fae = Fae::Create(f.config, f.trace, options);
  ASSERT_TRUE(fae.ok());
  // With a tiny GPU cache on a skewed trace, the host LLC still absorbs
  // a meaningful share of the cold lookups.
  EXPECT_GT((*fae)->cold_llc_fraction(), 0.0);
  EXPECT_LE((*fae)->cold_llc_fraction(), 1.0);
}

TEST(FaeTest, RejectsMismatchedTrace) {
  Fixture f = MakeFixture();
  f.config.num_tables = 4;
  EXPECT_FALSE(Fae::Create(f.config, f.trace).ok());
}

TEST(BaselineReportTest, AccumulateSums) {
  BaselineReport report;
  BaselineBatchReport batch;
  batch.embedding = 10.0;
  batch.total = 25.0;
  report.Accumulate(batch);
  report.Accumulate(batch);
  EXPECT_DOUBLE_EQ(report.embedding, 20.0);
  EXPECT_DOUBLE_EQ(report.total, 50.0);
  EXPECT_EQ(report.num_batches, 2u);
}

}  // namespace
}  // namespace updlrm::baselines
