#include "partition/allocation.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace updlrm::partition {
namespace {

std::vector<dlrm::TableShape> Shapes(
    std::initializer_list<std::uint64_t> rows) {
  std::vector<dlrm::TableShape> shapes;
  for (std::uint64_t r : rows) shapes.push_back({r, 32});
  return shapes;
}

std::uint32_t Sum(const std::vector<std::uint32_t>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

TEST(AllocationTest, EqualPolicySplitsEvenly) {
  const auto shapes = Shapes({1000, 1000, 1000, 1000});
  auto alloc = AllocateDpus(shapes, 32, 4, DpuAllocationPolicy::kEqual);
  ASSERT_TRUE(alloc.ok());
  for (std::uint32_t a : *alloc) EXPECT_EQ(a, 8u);
}

TEST(AllocationTest, ProportionalRowsFavorsBigTables) {
  const auto shapes = Shapes({7000, 1000});
  auto alloc =
      AllocateDpus(shapes, 32, 4, DpuAllocationPolicy::kProportionalRows);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(Sum(*alloc), 32u);
  EXPECT_EQ((*alloc)[0], 28u);  // 7/8 of 8 units * 4 col shards
  EXPECT_EQ((*alloc)[1], 4u);
}

TEST(AllocationTest, ProportionalTrafficUsesWeights) {
  const auto shapes = Shapes({1000, 1000});
  const std::vector<double> weights = {3.0, 1.0};
  auto alloc = AllocateDpus(shapes, 32, 4,
                            DpuAllocationPolicy::kProportionalTraffic,
                            weights);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], 24u);
  EXPECT_EQ((*alloc)[1], 8u);
}

TEST(AllocationTest, EveryTableGetsAtLeastOneRowShard) {
  const auto shapes = Shapes({1'000'000, 10, 10, 10});
  auto alloc =
      AllocateDpus(shapes, 32, 4, DpuAllocationPolicy::kProportionalRows);
  ASSERT_TRUE(alloc.ok());
  for (std::uint32_t a : *alloc) EXPECT_GE(a, 4u);  // >= col_shards
  EXPECT_EQ(Sum(*alloc), 32u);
}

TEST(AllocationTest, CountsAreColShardMultiples) {
  const auto shapes = Shapes({500, 900, 100});
  const std::vector<double> weights = {5.0, 9.0, 1.0};
  auto alloc = AllocateDpus(shapes, 48, 8,
                            DpuAllocationPolicy::kProportionalTraffic,
                            weights);
  ASSERT_TRUE(alloc.ok());
  for (std::uint32_t a : *alloc) EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(Sum(*alloc), 48u);
}

TEST(AllocationTest, RowShardCapRespected) {
  // A 2-row table cannot take more than 2 row shards.
  const auto shapes = Shapes({2, 1000});
  const std::vector<double> weights = {1000.0, 1.0};  // absurd weight
  auto alloc = AllocateDpus(shapes, 32, 4,
                            DpuAllocationPolicy::kProportionalTraffic,
                            weights);
  ASSERT_TRUE(alloc.ok());
  EXPECT_LE((*alloc)[0], 2u * 4);
}

TEST(AllocationTest, ZeroWeightsFallBackToEqual) {
  const auto shapes = Shapes({1000, 1000});
  const std::vector<double> weights = {0.0, 0.0};
  auto alloc = AllocateDpus(shapes, 16, 4,
                            DpuAllocationPolicy::kProportionalTraffic,
                            weights);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ((*alloc)[0], (*alloc)[1]);
}

TEST(AllocationTest, ErrorCases) {
  const auto shapes = Shapes({1000, 1000});
  // Not a multiple of col shards.
  EXPECT_FALSE(
      AllocateDpus(shapes, 30, 4, DpuAllocationPolicy::kEqual).ok());
  // Fewer units than tables.
  EXPECT_FALSE(
      AllocateDpus(shapes, 4, 4, DpuAllocationPolicy::kEqual).ok());
  // Traffic policy without weights.
  EXPECT_FALSE(
      AllocateDpus(shapes, 32, 4,
                   DpuAllocationPolicy::kProportionalTraffic)
          .ok());
  // No tables.
  EXPECT_FALSE(AllocateDpus({}, 32, 4, DpuAllocationPolicy::kEqual).ok());
}

class AllocationPropertyTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AllocationPropertyTest, SumsAndFloorsHoldAcrossSystemSizes) {
  const std::uint32_t num_dpus = GetParam();
  const auto shapes = Shapes({50'000, 5'000, 500'000, 1'000});
  const std::vector<double> weights = {5.0, 1.0, 20.0, 0.5};
  auto alloc = AllocateDpus(shapes, num_dpus, 4,
                            DpuAllocationPolicy::kProportionalTraffic,
                            weights);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(Sum(*alloc), num_dpus);
  for (std::uint32_t a : *alloc) {
    EXPECT_GE(a, 4u);
    EXPECT_EQ(a % 4, 0u);
  }
  // Monotonic with weight: the heaviest table gets the most DPUs.
  EXPECT_GE((*alloc)[2], (*alloc)[0]);
  EXPECT_GE((*alloc)[0], (*alloc)[1]);
}

INSTANTIATE_TEST_SUITE_P(SystemSizes, AllocationPropertyTest,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

}  // namespace
}  // namespace updlrm::partition
