#include "partition/uniform.h"

#include <gtest/gtest.h>

#include "pim/system.h"

namespace updlrm::partition {
namespace {

std::unique_ptr<pim::DpuSystem> MakeSystem() {
  pim::DpuSystemConfig config;
  config.num_dpus = 256;
  config.dpus_per_rank = 64;
  config.functional = false;
  auto system = pim::DpuSystem::Create(config);
  UPDLRM_CHECK(system.ok());
  return std::move(system).value();
}

TEST(UniformTest, ContiguousEqualBlocks) {
  auto geom = GroupGeometry::Make(dlrm::TableShape{100, 8}, 8, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, Method::kUniform);
  // 4 bins (8 DPUs / 2 col shards), 25 rows each, contiguous.
  EXPECT_EQ(plan->row_bin[0], 0u);
  EXPECT_EQ(plan->row_bin[24], 0u);
  EXPECT_EQ(plan->row_bin[25], 1u);
  EXPECT_EQ(plan->row_bin[99], 3u);
}

TEST(UniformTest, LastBinAbsorbsShortTail) {
  auto geom = GroupGeometry::Make(dlrm::TableShape{10, 8}, 8, 4);
  ASSERT_TRUE(geom.ok());
  // 4 bins, ceil(10/4) = 3 rows per bin; last bin gets 1.
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  auto rows = plan->EmtRowsPerBin();
  EXPECT_EQ(rows[0], 3u);
  EXPECT_EQ(rows[3], 1u);
}

TEST(TileOptimizerTest, PicksAFeasibleCandidate) {
  auto system = MakeSystem();
  auto result = OptimizeTileShape(dlrm::TableShape{2'360'650, 32}, 32, 64,
                                  245.8, *system);
  ASSERT_TRUE(result.ok());
  // Feasible candidates are 2, 4, 8 (6 does not divide 32).
  ASSERT_EQ(result->candidates.size(), 3u);
  EXPECT_EQ(result->candidates[0].nc, 2u);
  EXPECT_EQ(result->candidates[1].nc, 4u);
  EXPECT_EQ(result->candidates[2].nc, 8u);
  EXPECT_TRUE(result->best.nc == 2 || result->best.nc == 4 ||
              result->best.nc == 8);
}

TEST(TileOptimizerTest, BestMinimizesTotal) {
  auto system = MakeSystem();
  auto result = OptimizeTileShape(dlrm::TableShape{2'360'650, 32}, 32, 64,
                                  245.8, *system);
  ASSERT_TRUE(result.ok());
  for (const auto& cand : result->candidates) {
    EXPECT_LE(result->best.total_ns, cand.total_ns);
  }
}

TEST(TileOptimizerTest, TradeoffDirectionsMatchSection31) {
  // §3.1 / §4.3: larger Nc lowers CPU->DPU (fewer lookups per DPU) and
  // raises DPU->CPU (wider partial results).
  auto system = MakeSystem();
  auto result = OptimizeTileShape(dlrm::TableShape{2'360'650, 32}, 32, 64,
                                  245.8, *system);
  ASSERT_TRUE(result.ok());
  const auto& c = result->candidates;
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i].stage1_ns, c[i - 1].stage1_ns);
    EXPECT_GE(c[i].stage3_ns, c[i - 1].stage3_ns);
  }
}

TEST(TileOptimizerTest, EqTwoRejectsOversizedTiles) {
  auto system = MakeSystem();
  // A single DPU for a table whose tile would exceed 64 MB / 4 B values:
  // rows * nc must violate Eq. (2) for every candidate.
  auto result = OptimizeTileShape(dlrm::TableShape{20'000'000, 32}, 4, 64,
                                  50.0, *system);
  // 20M rows / (4/16 col shards)... every Nc makes Nr*Nc > 16.7M values.
  EXPECT_FALSE(result.ok());
}

TEST(TileOptimizerTest, RejectsBadArguments) {
  auto system = MakeSystem();
  EXPECT_FALSE(OptimizeTileShape(dlrm::TableShape{100, 32}, 32, 0, 50.0,
                                 *system)
                   .ok());
  EXPECT_FALSE(OptimizeTileShape(dlrm::TableShape{100, 32}, 32, 64, 0.0,
                                 *system)
                   .ok());
}

TEST(TileOptimizerTest, StageEstimatesArePositive) {
  auto system = MakeSystem();
  auto result = OptimizeTileShape(dlrm::TableShape{1'000'000, 32}, 32, 64,
                                  100.0, *system);
  ASSERT_TRUE(result.ok());
  for (const auto& cand : result->candidates) {
    EXPECT_GT(cand.stage1_ns, 0.0);
    EXPECT_GT(cand.stage2_ns, 0.0);
    EXPECT_GT(cand.stage3_ns, 0.0);
    EXPECT_DOUBLE_EQ(cand.total_ns,
                     cand.stage1_ns + cand.stage2_ns + cand.stage3_ns);
  }
}

}  // namespace
}  // namespace updlrm::partition
