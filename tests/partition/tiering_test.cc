// Statistical tiering / sharding planner tests: exact coverage,
// epsilon mass budget, capacity clamps, the 1-shard identity, and
// plan determinism.
#include "partition/tiering.h"

#include <gtest/gtest.h>

#include <vector>

#include "trace/profiler.h"

namespace updlrm::partition {
namespace {

trace::TableProfile MakeProfile(std::vector<std::uint64_t> freq) {
  trace::TableProfile p;
  p.by_freq = trace::ItemsByFrequency(freq);
  p.freq = std::move(freq);
  return p;
}

TEST(TieringTest, ValidateRejectsBadOptions) {
  TieringOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = TieringOptions{};
  options.dram_epsilon = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TieringTest, SingleShardNoEpsilonIsIdentity) {
  const std::vector<trace::TableProfile> profiles = {
      MakeProfile({5, 0, 9, 1, 0, 3})};
  TieringOptions options;  // 1 shard, epsilon 0
  options.keep_zero_freq_on_pim = true;
  auto plan = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  EXPECT_EQ(t.dram_rows, 0u);
  EXPECT_EQ(t.shard_rows[0], 6u);
  for (std::uint32_t r = 0; r < 6; ++r) {
    EXPECT_EQ(t.owner[r], 0u);
    EXPECT_EQ(t.local[r], r);  // local ids == global ids: the flat case
  }
}

TEST(TieringTest, ZeroFreqRowsSpillForFree) {
  const std::vector<trace::TableProfile> profiles = {
      MakeProfile({5, 0, 9, 0})};
  auto plan = BuildTierShardingPlan(profiles, TieringOptions{});
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  EXPECT_EQ(t.owner[1], kHostDramShard);
  EXPECT_EQ(t.owner[3], kHostDramShard);
  EXPECT_EQ(t.dram_rows, 2u);
  EXPECT_EQ(t.dram_accesses, 0u);  // free: no access mass spilled
}

TEST(TieringTest, EpsilonSpillsColdestWithinBudget) {
  // total mass 100; epsilon 0.1 allows 10: rows with freq 1*8 and 2
  // (coldest first) fit exactly; the next-coldest (freq 10) must stay.
  std::vector<std::uint64_t> freq = {50, 10, 30, 2, 1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<trace::TableProfile> profiles = {MakeProfile(freq)};
  TieringOptions options;
  options.dram_epsilon = 0.1;
  auto plan = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  EXPECT_LE(t.dram_accesses, 10u);
  EXPECT_EQ(t.dram_accesses, 10u);  // 8x freq-1 + freq-2 == exactly 10
  EXPECT_EQ(t.owner[0], 0u);
  EXPECT_EQ(t.owner[1], 0u);
  EXPECT_EQ(t.owner[2], 0u);
}

TEST(TieringTest, GreedyShardingBalancesAccessMass) {
  // 4 equal-mass rows over 2 shards: 2 rows and half the mass each.
  const std::vector<trace::TableProfile> profiles = {
      MakeProfile({25, 25, 25, 25})};
  TieringOptions options;
  options.num_shards = 2;
  auto plan = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  EXPECT_EQ(t.shard_rows[0], 2u);
  EXPECT_EQ(t.shard_rows[1], 2u);
  EXPECT_EQ(t.shard_accesses[0], 50u);
  EXPECT_EQ(t.shard_accesses[1], 50u);
  EXPECT_DOUBLE_EQ(plan->MaxShardImbalance(), 1.0);
}

TEST(TieringTest, CapacityOverflowSpillsToDram) {
  const std::vector<trace::TableProfile> profiles = {
      MakeProfile({9, 8, 7, 6, 5})};
  TieringOptions options;
  options.num_shards = 2;
  options.pim_capacity_rows_per_shard = 2;  // room for 4 of 5 rows
  auto plan = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  EXPECT_EQ(t.shard_rows[0], 2u);
  EXPECT_EQ(t.shard_rows[1], 2u);
  EXPECT_EQ(t.dram_rows, 1u);
  // The *coldest* row is the one pushed out.
  EXPECT_EQ(t.owner[4], kHostDramShard);
}

TEST(TieringTest, LocalIdsDenseAscendingPerOwner) {
  const std::vector<trace::TableProfile> profiles = {
      MakeProfile({9, 1, 8, 2, 7, 3, 6, 4})};
  TieringOptions options;
  options.num_shards = 3;
  auto plan = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(plan.ok());
  const TableTierPlan& t = plan->tables[0];
  std::vector<std::uint32_t> next(options.num_shards, 0);
  std::uint64_t covered = 0;
  for (std::size_t r = 0; r < t.owner.size(); ++r) {
    if (t.owner[r] == kHostDramShard) continue;
    ASSERT_LT(t.owner[r], options.num_shards);
    EXPECT_EQ(t.local[r], next[t.owner[r]]++);
    ++covered;
  }
  EXPECT_EQ(covered + t.dram_rows, t.num_rows());
}

TEST(TieringTest, PlanIsDeterministic) {
  std::vector<std::uint64_t> freq(257);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    freq[i] = (i * 2654435761u) % 97;  // fixed pseudo-random skew
  }
  const std::vector<trace::TableProfile> profiles = {MakeProfile(freq),
                                                     MakeProfile(freq)};
  TieringOptions options;
  options.num_shards = 4;
  options.dram_epsilon = 0.05;
  auto a = BuildTierShardingPlan(profiles, options);
  auto b = BuildTierShardingPlan(profiles, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(a->tables[t].owner, b->tables[t].owner);
    EXPECT_EQ(a->tables[t].local, b->tables[t].local);
    EXPECT_EQ(a->tables[t].shard_rows, b->tables[t].shard_rows);
    EXPECT_EQ(a->tables[t].shard_accesses, b->tables[t].shard_accesses);
  }
  // Identical profiles produce identical per-table plans.
  EXPECT_EQ(a->tables[0].owner, a->tables[1].owner);
}

}  // namespace
}  // namespace updlrm::partition
