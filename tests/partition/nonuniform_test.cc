#include "partition/nonuniform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "partition/uniform.h"

namespace updlrm::partition {
namespace {

GroupGeometry Geom(std::uint64_t rows, std::uint32_t bins) {
  // cols 8, nc 8 => 1 column shard => bins == dpus.
  auto geom = GroupGeometry::Make(dlrm::TableShape{rows, 8}, bins, 8);
  UPDLRM_CHECK(geom.ok());
  return *geom;
}

std::vector<double> BinLoads(const PartitionPlan& plan,
                             std::span<const std::uint64_t> freq) {
  std::vector<double> loads(plan.geom.row_shards, 0.0);
  for (std::uint64_t r = 0; r < freq.size(); ++r) {
    loads[plan.row_bin[r]] += static_cast<double>(freq[r]);
  }
  return loads;
}

TEST(NonUniformTest, RejectsWrongFreqSize) {
  const std::vector<std::uint64_t> freq(10, 1);
  EXPECT_FALSE(NonUniformPartition(Geom(20, 4), freq).ok());
}

TEST(NonUniformTest, BalancesSkewedFrequencies) {
  // Zipf-like frequencies: greedy packing should land within a few
  // percent of perfect balance, far better than contiguous blocks.
  const std::uint64_t rows = 4'000;
  std::vector<std::uint64_t> freq(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    freq[r] = static_cast<std::uint64_t>(
        100'000.0 / std::pow(static_cast<double>(r + 1), 1.05));
  }
  const GroupGeometry geom = Geom(rows, 8);
  auto nu = NonUniformPartition(geom, freq);
  ASSERT_TRUE(nu.ok());
  auto uniform = UniformPartition(geom);
  ASSERT_TRUE(uniform.ok());

  const double nu_imb = ImbalanceRatio(BinLoads(*nu, freq));
  const double u_imb = ImbalanceRatio(BinLoads(*uniform, freq));
  // The single hottest row alone exceeds the per-bin mean, so ~1.09 is
  // the best any row-granular packing can do here.
  EXPECT_LT(nu_imb, 1.15);
  EXPECT_GT(u_imb, 3.0);  // ids are popularity-ordered here: very skewed
}

TEST(NonUniformTest, EveryRowAssignedExactlyOnce) {
  std::vector<std::uint64_t> freq(100);
  Rng rng(3);
  for (auto& f : freq) f = rng.NextBounded(50);
  auto plan = NonUniformPartition(Geom(100, 4), freq);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->row_bin.size(), 100u);
  for (std::uint32_t bin : plan->row_bin) EXPECT_LT(bin, 4u);
  const auto rows = plan->EmtRowsPerBin();
  EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), 0ull), 100ull);
}

TEST(NonUniformTest, ZeroFrequencyTailSpreadsEvenly) {
  // All-zero frequencies: tie-break on row count keeps bins row-even.
  const std::vector<std::uint64_t> freq(100, 0);
  auto plan = NonUniformPartition(Geom(100, 4), freq);
  ASSERT_TRUE(plan.ok());
  for (std::uint64_t rows : plan->EmtRowsPerBin()) {
    EXPECT_EQ(rows, 25u);
  }
}

TEST(NonUniformTest, CapacityRespected) {
  std::vector<std::uint64_t> freq(100, 1);
  NonUniformOptions options;
  options.max_rows_per_bin = 25;
  auto plan = NonUniformPartition(Geom(100, 4), freq, options);
  ASSERT_TRUE(plan.ok());
  for (std::uint64_t rows : plan->EmtRowsPerBin()) {
    EXPECT_LE(rows, 25u);
  }
}

TEST(NonUniformTest, CapacityOverflowFails) {
  const std::vector<std::uint64_t> freq(100, 1);
  NonUniformOptions options;
  options.max_rows_per_bin = 20;  // 4 bins x 20 < 100 rows
  const auto plan = NonUniformPartition(Geom(100, 4), freq, options);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kCapacityExceeded);
}

TEST(NonUniformTest, HottestRowsLandInDistinctBins) {
  // The 4 hottest rows must spread across the 4 bins (greedy order).
  std::vector<std::uint64_t> freq(100, 1);
  freq[10] = 1000;
  freq[20] = 900;
  freq[30] = 800;
  freq[40] = 700;
  auto plan = NonUniformPartition(Geom(100, 4), freq);
  ASSERT_TRUE(plan.ok());
  std::vector<bool> used(4, false);
  for (std::uint64_t r : {10u, 20u, 30u, 40u}) {
    EXPECT_FALSE(used[plan->row_bin[r]]) << "row " << r;
    used[plan->row_bin[r]] = true;
  }
}

TEST(NonUniformTest, BatchedAssignmentRejectsZero) {
  const std::vector<std::uint64_t> freq(100, 1);
  NonUniformOptions options;
  options.assignment_batch = 0;
  EXPECT_FALSE(NonUniformPartition(Geom(100, 4), freq, options).ok());
}

TEST(NonUniformTest, BatchedAssignmentStillCoversAllRows) {
  std::vector<std::uint64_t> freq(1'000);
  Rng rng(9);
  for (auto& f : freq) f = rng.NextBounded(1'000);
  NonUniformOptions options;
  options.assignment_batch = 64;
  auto plan = NonUniformPartition(Geom(1'000, 8), freq, options);
  ASSERT_TRUE(plan.ok());
  const auto rows = plan->EmtRowsPerBin();
  EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), 0ull), 1'000ull);
}

TEST(NonUniformTest, BatchedAssignmentRespectsCapacity) {
  const std::vector<std::uint64_t> freq(100, 1);
  NonUniformOptions options;
  options.assignment_batch = 64;  // larger than per-bin capacity
  options.max_rows_per_bin = 25;
  auto plan = NonUniformPartition(Geom(100, 4), freq, options);
  ASSERT_TRUE(plan.ok());
  for (std::uint64_t rows : plan->EmtRowsPerBin()) {
    EXPECT_LE(rows, 25u);
  }
}

TEST(NonUniformTest, BatchedBalanceDegradesGracefully) {
  // §3.2's complexity-reduction note: batching trades a little balance
  // for fewer argmin scans. The degradation should stay modest for
  // moderate batch sizes on heavy-tailed loads.
  const std::uint64_t rows = 4'000;
  std::vector<std::uint64_t> freq(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    freq[r] = static_cast<std::uint64_t>(
        100'000.0 / std::pow(static_cast<double>(r + 1), 1.05));
  }
  const GroupGeometry geom = Geom(rows, 8);
  auto per_item = NonUniformPartition(geom, freq);
  NonUniformOptions batched_options;
  batched_options.assignment_batch = 32;
  auto batched = NonUniformPartition(geom, freq, batched_options);
  ASSERT_TRUE(per_item.ok() && batched.ok());
  const double imb_item = ImbalanceRatio(BinLoads(*per_item, freq));
  const double imb_batched = ImbalanceRatio(BinLoads(*batched, freq));
  EXPECT_GE(imb_batched, imb_item - 1e-9);
  EXPECT_LT(imb_batched, imb_item * 2.0);
}

class NonUniformPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonUniformPropertyTest, NeverWorseThanUniformOnRandomSkew) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::uint64_t rows = 1'000;
  std::vector<std::uint64_t> freq(rows);
  for (auto& f : freq) {
    // Heavy-tailed random loads.
    f = static_cast<std::uint64_t>(
        std::exp(rng.NextDouble() * 8.0));
  }
  const GroupGeometry geom = Geom(rows, 8);
  auto nu = NonUniformPartition(geom, freq);
  auto u = UniformPartition(geom);
  ASSERT_TRUE(nu.ok() && u.ok());
  EXPECT_LE(ImbalanceRatio(BinLoads(*nu, freq)),
            ImbalanceRatio(BinLoads(*u, freq)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonUniformPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace updlrm::partition
