#include "partition/cache_aware.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace updlrm::partition {
namespace {

GroupGeometry Geom(std::uint64_t rows, std::uint32_t bins) {
  auto geom = GroupGeometry::Make(dlrm::TableShape{rows, 8}, bins, 8);
  UPDLRM_CHECK(geom.ok());
  return *geom;
}

cache::CacheRes TwoLists() {
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{0, 1, 2}, 500.0});
  res.lists.push_back(cache::CacheList{{3, 4}, 200.0});
  return res;
}

CacheAwareOptions RoomyOptions() {
  CacheAwareOptions options;
  options.capacity = BinCapacity{1 * kMiB, 64 * kKiB};
  return options;
}

TEST(CacheAwareTest, PlacesAllListsWithRoomyCapacity) {
  std::vector<std::uint64_t> freq(100, 1);
  freq[0] = 300;
  freq[1] = 280;
  auto result =
      CacheAwarePartition(Geom(100, 4), freq, TwoLists(), RoomyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dropped_lists, 0u);
  EXPECT_EQ(result->plan.cache.lists.size(), 2u);
  EXPECT_EQ(result->plan.method, Method::kCacheAware);
  EXPECT_TRUE(result->plan.Validate(RoomyOptions().capacity).ok());
}

TEST(CacheAwareTest, CachedItemsColocateWithTheirList) {
  std::vector<std::uint64_t> freq(100, 1);
  auto result =
      CacheAwarePartition(Geom(100, 4), freq, TwoLists(), RoomyOptions());
  ASSERT_TRUE(result.ok());
  const auto& plan = result->plan;
  for (std::size_t l = 0; l < plan.cache.lists.size(); ++l) {
    for (std::uint32_t item : plan.cache.lists[l].items) {
      EXPECT_EQ(plan.row_bin[item],
                static_cast<std::uint32_t>(plan.list_bin[l]));
      EXPECT_EQ(plan.item_list[item], static_cast<std::int32_t>(l));
    }
  }
}

TEST(CacheAwareTest, EveryRowAssigned) {
  std::vector<std::uint64_t> freq(200, 2);
  auto result =
      CacheAwarePartition(Geom(200, 4), freq, TwoLists(), RoomyOptions());
  ASSERT_TRUE(result.ok());
  const auto emt_rows = result->plan.EmtRowsPerBin();
  const std::uint64_t cached = 5;  // 3 + 2 items live in cache regions
  EXPECT_EQ(std::accumulate(emt_rows.begin(), emt_rows.end(), 0ull),
            200ull - cached);
}

TEST(CacheAwareTest, BalancesEffectiveLoad) {
  // Uncached load 100 per bin would be balanced; hot cached lists with
  // large benefits must not all pile onto one bin.
  const std::uint64_t rows = 400;
  std::vector<std::uint64_t> freq(rows, 1);
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{0, 1}, 50.0});
  res.lists.push_back(cache::CacheList{{2, 3}, 50.0});
  res.lists.push_back(cache::CacheList{{4, 5}, 50.0});
  res.lists.push_back(cache::CacheList{{6, 7}, 50.0});
  for (std::uint32_t i = 0; i < 8; ++i) freq[i] = 100;
  auto result = CacheAwarePartition(Geom(rows, 4), freq, res,
                                    RoomyOptions());
  ASSERT_TRUE(result.ok());
  // Four equal lists over four bins: one each.
  std::vector<int> lists_per_bin(4, 0);
  for (std::int32_t bin : result->plan.list_bin) ++lists_per_bin[bin];
  for (int n : lists_per_bin) EXPECT_EQ(n, 1);
}

TEST(CacheAwareTest, TightCacheCapacityDropsLists) {
  std::vector<std::uint64_t> freq(100, 1);
  CacheAwareOptions options;
  // Room for only the 3-slot (2-item) list per bin? The 3-item list
  // needs 7 slots * 32 B = 224 B; give each bin 100 B of cache.
  options.capacity = BinCapacity{1 * kMiB, 100};
  auto result =
      CacheAwarePartition(Geom(100, 4), freq, TwoLists(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dropped_lists, 1u);
  ASSERT_EQ(result->plan.cache.lists.size(), 1u);
  EXPECT_EQ(result->plan.cache.lists[0].items.size(), 2u);
  // Dropped items fall back to the EMT region.
  EXPECT_EQ(result->plan.item_list[0], -1);
}

TEST(CacheAwareTest, FailFastModeRejectsUnplaceableLists) {
  std::vector<std::uint64_t> freq(100, 1);
  CacheAwareOptions options;
  options.capacity = BinCapacity{1 * kMiB, 100};
  options.drop_unplaceable_lists = false;
  const auto result =
      CacheAwarePartition(Geom(100, 4), freq, TwoLists(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(CacheAwareTest, EmtCapacityOverflowFails) {
  std::vector<std::uint64_t> freq(100, 1);
  CacheAwareOptions options;
  options.capacity = BinCapacity{8 * 20, 64 * kKiB};  // 20 rows per bin
  const auto result =
      CacheAwarePartition(Geom(100, 4), freq, TwoLists(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(CacheAwareTest, EmptyCacheDegeneratesToNonUniformBehaviour) {
  std::vector<std::uint64_t> freq(100, 0);
  for (std::uint32_t i = 0; i < 100; ++i) freq[i] = 100 - i;
  auto result = CacheAwarePartition(Geom(100, 4), freq, cache::CacheRes{},
                                    RoomyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.cache.lists.empty());
  // Loads should be near balanced (greedy on frequencies).
  std::vector<std::uint64_t> loads(4, 0);
  for (std::uint64_t r = 0; r < 100; ++r) {
    loads[result->plan.row_bin[r]] += freq[r];
  }
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  EXPECT_LE(*hi - *lo, 100u);
}

TEST(CacheAwareTest, RejectsInvalidCacheRes) {
  std::vector<std::uint64_t> freq(100, 1);
  cache::CacheRes bad;
  bad.lists.push_back(cache::CacheList{{1}, 10.0});  // single item
  EXPECT_FALSE(
      CacheAwarePartition(Geom(100, 4), freq, bad, RoomyOptions()).ok());
}

TEST(CacheAwareTest, RejectsWrongFreqSize) {
  std::vector<std::uint64_t> freq(50, 1);
  EXPECT_FALSE(CacheAwarePartition(Geom(100, 4), freq, TwoLists(),
                                   RoomyOptions())
                   .ok());
}

}  // namespace
}  // namespace updlrm::partition
