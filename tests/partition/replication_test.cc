#include "partition/replication.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "partition/cache_aware.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"

namespace updlrm::partition {
namespace {

GroupGeometry Geom(std::uint64_t rows, std::uint32_t bins) {
  auto geom = GroupGeometry::Make(dlrm::TableShape{rows, 8}, bins, 8);
  UPDLRM_CHECK(geom.ok());
  return *geom;
}

TEST(ReplicationTest, PicksHottestRows) {
  std::vector<std::uint64_t> freq(100, 1);
  freq[7] = 100;
  freq[42] = 90;
  freq[3] = 80;
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  auto n = ApplyReplication(*plan, freq, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(plan->replicated_rows, (std::vector<std::uint32_t>{3, 7, 42}));
  EXPECT_TRUE(plan->has_replication());
  EXPECT_EQ(plan->ReplicaBytesPerBin(), 3u * 32);
}

TEST(ReplicationTest, SkipsZeroFrequencyRows) {
  std::vector<std::uint64_t> freq(100, 0);
  freq[5] = 10;
  freq[6] = 9;
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  auto n = ApplyReplication(*plan, freq, 10);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);  // only the two rows with traffic
}

TEST(ReplicationTest, SkipsCachedRows) {
  std::vector<std::uint64_t> freq(100, 1);
  freq[0] = 100;
  freq[1] = 90;
  freq[2] = 80;
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{0, 1}, 50.0});
  CacheAwareOptions options;
  options.capacity = BinCapacity{1 * kMiB, 4 * kKiB};
  auto result = CacheAwarePartition(Geom(100, 4), freq, res, options);
  ASSERT_TRUE(result.ok());
  auto n = ApplyReplication(result->plan, freq, 2);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  // Rows 0 and 1 are cached; the hottest uncached rows are 2 and one of
  // the uniform tail.
  EXPECT_TRUE(std::binary_search(result->plan.replicated_rows.begin(),
                                 result->plan.replicated_rows.end(), 2u));
  EXPECT_FALSE(std::binary_search(result->plan.replicated_rows.begin(),
                                  result->plan.replicated_rows.end(), 0u));
  EXPECT_TRUE(result->plan.Validate(options.capacity).ok());
}

TEST(ReplicationTest, ZeroKIsNoOp) {
  std::vector<std::uint64_t> freq(100, 1);
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  auto n = ApplyReplication(*plan, freq, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_FALSE(plan->has_replication());
}

TEST(ReplicationTest, Idempotent) {
  std::vector<std::uint64_t> freq(100, 1);
  freq[9] = 50;
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ApplyReplication(*plan, freq, 5).ok());
  ASSERT_TRUE(ApplyReplication(*plan, freq, 2).ok());
  EXPECT_EQ(plan->replicated_rows.size(), 2u);
}

TEST(ReplicationTest, ReplicatedRowsLeaveEmtRegion) {
  std::vector<std::uint64_t> freq(100, 1);
  freq[0] = 100;
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ApplyReplication(*plan, freq, 1).ok());
  const auto rows = plan->EmtRowsPerBin();
  // Row 0 lived in bin 0's block of 25; it is now replica-only.
  EXPECT_EQ(rows[0], 24u);
  EXPECT_EQ(rows[1], 25u);
}

TEST(ReplicationTest, ValidateRejectsCorruptReplication) {
  std::vector<std::uint64_t> freq(100, 1);
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  plan->replicated_rows = {5, 3};  // unsorted
  EXPECT_FALSE(plan->Validate(BinCapacity{1 * kMiB, 0}).ok());
  plan->replicated_rows = {3, 3};  // duplicate
  EXPECT_FALSE(plan->Validate(BinCapacity{1 * kMiB, 0}).ok());
  plan->replicated_rows = {100};  // out of range
  EXPECT_FALSE(plan->Validate(BinCapacity{1 * kMiB, 0}).ok());
}

TEST(ReplicationTest, CapacityAccountsReplicaRegion) {
  std::vector<std::uint64_t> freq(100, 1);
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ApplyReplication(*plan, freq, 50).ok());
  // 25 rows/bin max minus replicas... replica region = 50 * 32 B; a
  // capacity that fits plain rows but not the replica copies must fail.
  const Status tight = plan->Validate(BinCapacity{25 * 32, 0});
  EXPECT_EQ(tight.code(), StatusCode::kCapacityExceeded);
  EXPECT_TRUE(plan->Validate(BinCapacity{80 * 32, 0}).ok());
}

TEST(ReplicationTest, RejectsWrongFreqSize) {
  std::vector<std::uint64_t> freq(50, 1);
  auto plan = UniformPartition(Geom(100, 4));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(ApplyReplication(*plan, freq, 5).ok());
}

}  // namespace
}  // namespace updlrm::partition
