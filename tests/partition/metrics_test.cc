#include "partition/metrics.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "partition/cache_aware.h"
#include "partition/nonuniform.h"
#include "partition/uniform.h"
#include "trace/generator.h"
#include "trace/profiler.h"

namespace updlrm::partition {
namespace {

GroupGeometry Geom(std::uint64_t rows, std::uint32_t bins) {
  auto geom = GroupGeometry::Make(dlrm::TableShape{rows, 8}, bins, 8);
  UPDLRM_CHECK(geom.ok());
  return *geom;
}

trace::TableTrace HandTrace() {
  trace::TableTrace t;
  t.AppendSample(std::vector<std::uint32_t>{0, 1, 5});
  t.AppendSample(std::vector<std::uint32_t>{0, 1});
  t.AppendSample(std::vector<std::uint32_t>{7});
  return t;
}

TEST(MetricsTest, UncachedReplayCountsEmtReads) {
  const auto trace = HandTrace();
  auto plan = UniformPartition(Geom(8, 4));  // 2 rows per bin
  ASSERT_TRUE(plan.ok());
  const LoadReport report = ReplayLoads(trace, *plan);
  // rows 0,1 -> bin 0 (3+2... row0 twice, row1 twice => 4 reads),
  // row 5 -> bin 2, row 7 -> bin 3.
  EXPECT_EQ(report.emt_reads[0], 4u);
  EXPECT_EQ(report.emt_reads[1], 0u);
  EXPECT_EQ(report.emt_reads[2], 1u);
  EXPECT_EQ(report.emt_reads[3], 1u);
  EXPECT_EQ(report.sum_reads, 6u);
  EXPECT_EQ(report.uncached_reads, 6u);
  EXPECT_DOUBLE_EQ(report.TrafficReduction(), 0.0);
}

TEST(MetricsTest, CachedReplayCollapsesIntersections) {
  const auto trace = HandTrace();
  std::vector<std::uint64_t> freq = trace::ItemFrequencies(trace, 8);
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{0, 1}, 2.0});
  CacheAwareOptions options;
  options.capacity = BinCapacity{1 * kMiB, 4 * kKiB};
  auto result = CacheAwarePartition(Geom(8, 4), freq, res, options);
  ASSERT_TRUE(result.ok());
  const LoadReport report = ReplayLoads(trace, result->plan);
  // Samples 0 and 1 each collapse {0,1} into one cache read.
  const std::uint64_t total_cache = std::accumulate(
      report.cache_reads.begin(), report.cache_reads.end(), 0ull);
  EXPECT_EQ(total_cache, 2u);
  EXPECT_EQ(report.sum_reads, 4u);  // 2 cache + row5 + row7
  EXPECT_EQ(report.uncached_reads, 6u);
  EXPECT_NEAR(report.TrafficReduction(), 1.0 - 4.0 / 6.0, 1e-12);
}

TEST(MetricsTest, SingleItemIntersectionStillOneRead) {
  trace::TableTrace t;
  t.AppendSample(std::vector<std::uint32_t>{0});  // only half the list
  std::vector<std::uint64_t> freq = trace::ItemFrequencies(t, 8);
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{0, 1}, 0.5});
  CacheAwareOptions options;
  options.capacity = BinCapacity{1 * kMiB, 4 * kKiB};
  auto result = CacheAwarePartition(Geom(8, 4), freq, res, options);
  ASSERT_TRUE(result.ok());
  const LoadReport report = ReplayLoads(t, result->plan);
  EXPECT_EQ(report.sum_reads, 1u);
  const std::uint64_t total_cache = std::accumulate(
      report.cache_reads.begin(), report.cache_reads.end(), 0ull);
  EXPECT_EQ(total_cache, 1u);  // served from the cache region
}

TEST(MetricsTest, NonUniformBeatsUniformOnSkewedTrace) {
  // The Fig. 6 story, miniature: skewed trace, NU balances per-bin reads.
  trace::DatasetSpec spec;
  spec.name = "skew";
  spec.num_items = 2'000;
  spec.avg_reduction = 16.0;
  spec.zipf_alpha = 1.1;
  spec.rank_jitter = 0.05;
  spec.clique_prob = 0.0;
  spec.num_hot_items = 0;
  spec.seed = 21;
  trace::TraceGeneratorOptions options;
  options.num_samples = 400;
  options.num_tables = 1;
  auto trace = trace::TraceGenerator(spec).Generate(options);
  ASSERT_TRUE(trace.ok());
  const auto& table = trace->tables[0];
  const auto freq = trace::ItemFrequencies(table, spec.num_items);

  const GroupGeometry geom = Geom(spec.num_items, 8);
  auto u = UniformPartition(geom);
  auto nu = NonUniformPartition(geom, freq);
  ASSERT_TRUE(u.ok() && nu.ok());
  const LoadReport u_report = ReplayLoads(table, *u);
  const LoadReport nu_report = ReplayLoads(table, *nu);
  EXPECT_EQ(u_report.sum_reads, nu_report.sum_reads);  // no caching
  EXPECT_LT(nu_report.imbalance, u_report.imbalance);
  EXPECT_LT(nu_report.cv, 0.2);
}

TEST(MetricsTest, TotalsAreConsistent) {
  const auto trace = HandTrace();
  auto plan = UniformPartition(Geom(8, 4));
  ASSERT_TRUE(plan.ok());
  const LoadReport report = ReplayLoads(trace, *plan);
  std::uint64_t sum = 0;
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(report.total_reads[b],
              report.emt_reads[b] + report.cache_reads[b]);
    sum += report.total_reads[b];
  }
  EXPECT_EQ(sum, report.sum_reads);
}

}  // namespace
}  // namespace updlrm::partition
