#include "partition/plan.h"

#include <gtest/gtest.h>

#include "partition/uniform.h"

namespace updlrm::partition {
namespace {

dlrm::TableShape Shape(std::uint64_t rows = 1000, std::uint32_t cols = 32) {
  return dlrm::TableShape{rows, cols};
}

TEST(GeometryTest, DerivesShardCounts) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  EXPECT_EQ(geom->col_shards, 8u);   // 32 cols / 4
  EXPECT_EQ(geom->row_shards, 4u);   // 32 DPUs / 8 shards
  EXPECT_EQ(geom->row_bytes(), 16u);
  EXPECT_EQ(geom->UniformRowsPerBin(), 250u);
}

TEST(GeometryTest, PaperNcChoices) {
  // The paper's Nc candidates for a 32-wide embedding on a 32-DPU group.
  for (std::uint32_t nc : {2u, 4u, 8u}) {
    EXPECT_TRUE(GroupGeometry::Make(Shape(), 32, nc).ok()) << nc;
  }
  // Nc = 6 does not divide 32: infeasible, as the evaluation notes.
  EXPECT_FALSE(GroupGeometry::Make(Shape(), 32, 6).ok());
}

TEST(GeometryTest, RejectsOddNc) {
  // Nc must be even so slices stay 8-byte aligned (Eq. 3: Nc = 2k).
  EXPECT_FALSE(GroupGeometry::Make(Shape(), 32, 1).ok());
  EXPECT_FALSE(GroupGeometry::Make(Shape(), 32, 0).ok());
}

TEST(GeometryTest, RejectsIndivisibleDpuCount) {
  // 32/4 = 8 column shards must divide the DPU count.
  EXPECT_FALSE(GroupGeometry::Make(Shape(), 12, 4).ok());
}

TEST(GeometryTest, RejectsMoreShardsThanRows) {
  EXPECT_FALSE(GroupGeometry::Make(Shape(2, 32), 64, 8).ok());
}

TEST(GeometryTest, DpuLocalLayout) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  EXPECT_EQ(geom->DpuLocal(0, 0), 0u);
  EXPECT_EQ(geom->DpuLocal(0, 7), 7u);
  EXPECT_EQ(geom->DpuLocal(1, 0), 8u);
  EXPECT_EQ(geom->DpuLocal(3, 7), 31u);
}

TEST(MethodTest, Names) {
  EXPECT_EQ(MethodName(Method::kUniform), "uniform");
  EXPECT_EQ(MethodShortName(Method::kUniform), "U");
  EXPECT_EQ(MethodShortName(Method::kNonUniform), "NU");
  EXPECT_EQ(MethodShortName(Method::kCacheAware), "CA");
}

TEST(BinCapacityTest, FromMramSubtractsRegions) {
  const BinCapacity cap = BinCapacity::FromMram(64 * kMiB, 8 * kMiB,
                                                4 * kMiB);
  EXPECT_EQ(cap.emt_bytes, 52u * kMiB);
  EXPECT_EQ(cap.cache_bytes, 4u * kMiB);
}

TEST(PlanValidateTest, UniformPlanPasses) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(BinCapacity{64 * kMiB, 0}).ok());
}

TEST(PlanValidateTest, DetectsOutOfRangeBin) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  plan->row_bin[5] = 99;
  EXPECT_FALSE(plan->Validate(BinCapacity{64 * kMiB, 0}).ok());
}

TEST(PlanValidateTest, DetectsCapacityOverflow) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  // 250 rows * 16 B = 4000 bytes per bin; a 1 KB capacity must fail.
  const Status s = plan->Validate(BinCapacity{1024, 0});
  EXPECT_EQ(s.code(), StatusCode::kCapacityExceeded);
}

TEST(PlanValidateTest, DetectsIncompleteRowAssignment) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  plan->row_bin.pop_back();
  EXPECT_FALSE(plan->Validate(BinCapacity{64 * kMiB, 0}).ok());
}

TEST(PlanValidateTest, CacheMetadataWithoutListsRejected) {
  auto geom = GroupGeometry::Make(Shape(), 32, 4);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  plan->list_bin.push_back(0);  // dangling bin without a list
  EXPECT_FALSE(plan->Validate(BinCapacity{64 * kMiB, 0}).ok());
}

TEST(PlanTest, EmtRowsPerBinCountsUncachedRows) {
  auto geom = GroupGeometry::Make(Shape(100, 4), 4, 2);
  ASSERT_TRUE(geom.ok());
  auto plan = UniformPartition(*geom);
  ASSERT_TRUE(plan.ok());
  // 2 bins x 50 rows.
  auto rows = plan->EmtRowsPerBin();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 50u);
  EXPECT_EQ(rows[1], 50u);

  // Marking two rows of bin 0 as cached removes them from the EMT count.
  plan->cache.lists.push_back(cache::CacheList{{3, 7}, 1.0});
  plan->list_bin.push_back(0);
  plan->item_list = plan->cache.BuildItemToList(100);
  rows = plan->EmtRowsPerBin();
  EXPECT_EQ(rows[0], 48u);
  EXPECT_EQ(rows[1], 50u);
}

}  // namespace
}  // namespace updlrm::partition
