// Fixture tests of the project-invariant lint engine: each rule R1-R6
// is tripped by exactly one minimal fixture, a clean fixture passes,
// and UPDLRM_LINT_ALLOW suppressions are honored and auditable. The
// fixtures use virtual repo-relative paths ("src/updlrm/fixture.cc") —
// rule scoping depends only on the path string, never the filesystem.
#include "updlrm_lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "updlrm_lint/rules.h"

namespace updlrm::lint {
namespace {

std::vector<Finding> LintSnippet(const std::string& path, const char* source) {
  return LintSource(path, std::string(source));
}

int CountRule(const std::vector<Finding>& findings, RuleId rule) {
  int n = 0;
  for (const Finding& f : findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// --- R1: unordered-container iteration. ---

TEST(LintTest, R1FlagsRangeForOverUnorderedMap) {
  const auto findings = LintSnippet("src/updlrm/fixture.cc", R"(
    #include <unordered_map>
    int Sum(const std::unordered_map<int, int>& hist) {
      int sum = 0;
      for (const auto& kv : hist) sum += kv.second;
      return sum;
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kUnorderedIteration), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintTest, R1AllowsLookupAndFlagsIteratorWalk) {
  // Lookup is fine...
  EXPECT_TRUE(LintSnippet("src/cache/fixture.cc", R"(
    #include <unordered_map>
    int Get(std::unordered_map<int, int>& m) {
      auto it = m.find(3);
      return it == m.end() ? 0 : it->second;
    }
  )").empty());
  // ... an explicit begin() walk is not.
  const auto findings = LintSnippet("src/cache/fixture.cc", R"(
    #include <unordered_set>
    int First(std::unordered_set<int>& seen) {
      return *seen.begin();
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kUnorderedIteration), 1);
}

TEST(LintTest, R1ScopesToSrcAndBenchOnly) {
  const char* source = R"(
    #include <unordered_map>
    void Dump(const std::unordered_map<int, int>& m) {
      for (const auto& kv : m) (void)kv;
    }
  )";
  EXPECT_EQ(CountRule(LintSnippet("tests/updlrm/fixture.cc", source),
                      RuleId::kUnorderedIteration),
            0);
  EXPECT_EQ(CountRule(LintSnippet("bench/fixture.cc", source),
                      RuleId::kUnorderedIteration),
            1);
}

// --- R2: allocation inside a NOALLOC region. ---

TEST(LintTest, R2FlagsAllocationInNoallocRegion) {
  const auto findings = LintSnippet("src/serve/fixture.cc", R"(
    void Hot(int n) {
      // UPDLRM_NOALLOC_BEGIN
      int* p = new int[n];
      delete[] p;
      // UPDLRM_NOALLOC_END
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kNoallocRegion), 1);
}

TEST(LintTest, R2AllowsWarmReuseAndPlacementNew) {
  EXPECT_TRUE(LintSnippet("src/serve/fixture.cc", R"(
    #include <vector>
    struct S {
      std::vector<int> scratch_;
      char slot_[16];
      void Hot(int n) {
        // UPDLRM_NOALLOC_BEGIN
        scratch_.assign(n, 0);
        scratch_.resize(n * 2);
        new (slot_) int(7);
        // UPDLRM_NOALLOC_END
      }
    };
  )").empty());
}

TEST(LintTest, R2FlagsUnbalancedRegion) {
  const auto findings = LintSnippet("src/serve/fixture.cc", R"(
    // UPDLRM_NOALLOC_BEGIN
    void Hot() {}
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kNoallocRegion), 1);
}

// --- R3: ambient clock / randomness sources. ---

TEST(LintTest, R3FlagsSystemClockOutsideTelemetry) {
  const auto findings = LintSnippet("src/updlrm/fixture.cc", R"(
    #include <chrono>
    double Now() {
      return std::chrono::system_clock::now().time_since_epoch().count();
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kClockSource), 1);
}

TEST(LintTest, R3AllowsSteadyClockAndSanctionedHomes) {
  EXPECT_TRUE(LintSnippet("src/updlrm/fixture.cc", R"(
    #include <chrono>
    auto T() { return std::chrono::steady_clock::now(); }
  )").empty());
  // The tracer owns the host-clock domain; rng.h owns entropy.
  EXPECT_TRUE(LintSnippet("src/telemetry/tracer.cc", R"(
    #include <chrono>
    auto T() { return std::chrono::system_clock::now(); }
  )").empty());
  EXPECT_TRUE(LintSnippet("src/common/rng.h", R"(
    #include <random>
    auto Seed() { return std::random_device{}(); }
  )").empty());
}

TEST(LintTest, R3ChecksTelemetryFilesOutsideTheTracer) {
  // The exemption is the tracer file pair, not the whole module: the
  // fleet monitor runs on simulated time and must never read the wall
  // clock (DESIGN.md §"Fleet health monitoring").
  const auto findings = LintSnippet("src/telemetry/monitor.cc", R"(
    #include <chrono>
    double Now() {
      return std::chrono::system_clock::now().time_since_epoch().count();
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kClockSource), 1);
}

TEST(LintTest, R3FlagsRandomEnginesEverywhereElse) {
  const auto findings = LintSnippet("tests/updlrm/fixture.cc", R"(
    #include <random>
    int Draw() {
      std::mt19937 gen(42);
      return static_cast<int>(gen());
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kClockSource), 1);
}

// --- R4: include layering. ---

TEST(LintTest, R4FlagsDownwardInclude) {
  const auto findings = LintSnippet("src/pim/fixture.cc", R"(
    #include "pim/dpu.h"
    #include "updlrm/engine.h"
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kIncludeLayering), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, R4AllowsDagEdgesTransitively) {
  EXPECT_TRUE(LintSnippet("src/serve/fixture.cc", R"(
    #include <vector>
    #include "common/status.h"
    #include "telemetry/tracer.h"
    #include "updlrm/engine.h"
    #include "serve/batcher.h"
  )").empty());
}

// --- R5: DpuStats / X-macro coverage. ---

TEST(LintTest, R5FlagsCounterMissingFromXmacro) {
  const auto findings = LintSnippet("src/pim/fixture.h", R"(
    #include <cstdint>
    #define UPDLRM_DPU_COUNTER_FIELDS(X) \
      X(lookups)                         \
      X(samples)
    struct DpuStats {
      std::uint64_t lookups = 0;
      std::uint64_t samples = 0;
      std::uint64_t forgotten = 0;
    };
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kCounterXmacro), 1);
}

TEST(LintTest, R5FlagsXmacroEntryWithoutField) {
  const auto findings = LintSnippet("src/pim/fixture.h", R"(
    #include <cstdint>
    #define UPDLRM_DPU_COUNTER_FIELDS(X) \
      X(lookups)                         \
      X(ghost)
    struct DpuStats {
      std::uint64_t lookups = 0;
    };
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kCounterXmacro), 1);
}

TEST(LintTest, R5AcceptsExactCoverageAndIgnoresNonCounters) {
  EXPECT_TRUE(LintSnippet("src/pim/fixture.h", R"(
    #include <cstdint>
    using Cycles = std::uint64_t;
    #define UPDLRM_DPU_COUNTER_FIELDS(X) \
      X(lookups)                         \
      X(samples)
    struct DpuStats {
      std::uint64_t lookups = 0;
      std::uint64_t samples = 0;
      Cycles kernel_cycles = 0;  // not a std::uint64_t-spelled counter
    };
  )").empty());
}

// --- R6: float accumulation in parallel regions. ---

TEST(LintTest, R6FlagsFloatCompoundAddInParallelFor) {
  const auto findings = LintSnippet("src/updlrm/fixture.cc", R"(
    void Merge(double* out) {
      double acc = 0.0;
      ParallelFor(100, [&](std::size_t b, std::size_t e) {
        acc += static_cast<double>(e - b);
      });
      *out = acc;
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kFloatAccumulation), 1);
}

TEST(LintTest, R6AllowsIntegerLanesAndSerialFloatFolds) {
  EXPECT_TRUE(LintSnippet("src/updlrm/fixture.cc", R"(
    void Merge(long* lanes, double* out, int n) {
      ParallelFor(100, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) lanes[i] += 1;
      });
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += static_cast<double>(lanes[i]);
      *out = acc;
    }
  )").empty());
}

TEST(LintTest, R6FlagsAtomicFloatAnywhereInSrc) {
  const auto findings = LintSnippet("src/host/fixture.h", R"(
    #include <atomic>
    struct Totals {
      std::atomic<double> energy{0.0};
    };
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kFloatAccumulation), 1);
}

// --- Clean fixture, suppressions, report rendering. ---

TEST(LintTest, CleanFixtureProducesNoFindings) {
  EXPECT_TRUE(LintSnippet("src/updlrm/fixture.cc", R"(
    #include <cstdint>
    #include <map>
    #include "common/status.h"
    #include "pim/dpu.h"
    std::uint64_t Tally(const std::map<int, std::uint64_t>& ordered) {
      std::uint64_t sum = 0;
      for (const auto& kv : ordered) sum += kv.second;
      return sum;
    }
  )").empty());
}

TEST(LintTest, AllowDirectiveSuppressesOnItsLineAndTheNext) {
  EXPECT_TRUE(LintSnippet("src/updlrm/fixture.cc", R"(
    #include <chrono>
    double Wall() {
      // UPDLRM_LINT_ALLOW(clock-source): exporter labels wall time.
      auto t = std::chrono::system_clock::now();
      return static_cast<double>(t.time_since_epoch().count());
    }
  )").empty());
  // The suppression is rule-specific: allowing R3 does not hide R1.
  const auto findings = LintSnippet("src/updlrm/fixture.cc", R"(
    #include <unordered_map>
    int Sum(const std::unordered_map<int, int>& m) {
      int sum = 0;
      // UPDLRM_LINT_ALLOW(clock-source): wrong rule on purpose.
      for (const auto& kv : m) sum += kv.second;
      return sum;
    }
  )");
  EXPECT_EQ(CountRule(findings, RuleId::kUnorderedIteration), 1);
}

TEST(LintTest, UnknownAllowRuleIsItselfReported) {
  const auto findings = LintSnippet("src/updlrm/fixture.cc", R"(
    // UPDLRM_LINT_ALLOW(no-such-rule): typo.
    void F() {}
  )");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintTest, RuleNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumLintRules; ++i) {
    const auto rule = static_cast<RuleId>(i);
    EXPECT_EQ(RuleFromName(RuleName(rule)), rule);
    EXPECT_EQ(RuleFromName(RuleCode(rule)), rule);
  }
  EXPECT_EQ(RuleFromName("bogus"), RuleId::kNumRules);
}

TEST(LintTest, JsonReportCarriesFindings) {
  LintResult result;
  result.files = {"src/a.cc"};
  result.findings.push_back(Finding{
      RuleId::kClockSource, "src/a.cc", 7, "use of \"system_clock\""});
  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"R3\""), std::string::npos);
  EXPECT_NE(json.find("\\\"system_clock\\\""), std::string::npos);
  EXPECT_NE(ToText(result).find("src/a.cc:7: [R3] clock-source"),
            std::string::npos);
}

}  // namespace
}  // namespace updlrm::lint
