#include "trace/trace.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::trace {
namespace {

TEST(TableTraceTest, AppendAndRead) {
  TableTrace t;
  const std::vector<std::uint32_t> s0 = {1, 5, 9};
  const std::vector<std::uint32_t> s1 = {2};
  t.AppendSample(s0);
  t.AppendSample(s1);
  EXPECT_EQ(t.num_samples(), 2u);
  EXPECT_EQ(t.num_lookups(), 4u);
  ASSERT_EQ(t.Sample(0).size(), 3u);
  EXPECT_EQ(t.Sample(0)[1], 5u);
  ASSERT_EQ(t.Sample(1).size(), 1u);
  EXPECT_EQ(t.Sample(1)[0], 2u);
}

TEST(TableTraceTest, EmptySampleAllowed) {
  TableTrace t;
  t.AppendSample({});
  EXPECT_EQ(t.num_samples(), 1u);
  EXPECT_TRUE(t.Sample(0).empty());
}

TEST(TableTraceTest, MeasuredAvgReduction) {
  TableTrace t;
  t.AppendSample(std::vector<std::uint32_t>{1, 2, 3});
  t.AppendSample(std::vector<std::uint32_t>{4});
  EXPECT_DOUBLE_EQ(t.MeasuredAvgReduction(), 2.0);
}

TEST(TableTraceDeathTest, UnsortedSampleRejected) {
  TableTrace t;
  EXPECT_DEATH(t.AppendSample(std::vector<std::uint32_t>{5, 1}), "sorted");
}

TEST(TableTraceDeathTest, DuplicateIndicesRejected) {
  TableTrace t;
  EXPECT_DEATH(t.AppendSample(std::vector<std::uint32_t>{1, 1}), "unique");
}

TEST(TraceTest, ValidateAcceptsConsistentTrace) {
  Trace trace;
  trace.num_items = 10;
  trace.tables.resize(2);
  trace.tables[0].AppendSample(std::vector<std::uint32_t>{0, 9});
  trace.tables[1].AppendSample(std::vector<std::uint32_t>{3});
  EXPECT_TRUE(trace.Validate().ok());
  EXPECT_EQ(trace.num_samples(), 1u);
  EXPECT_EQ(trace.num_tables(), 2u);
}

TEST(TraceTest, ValidateRejectsMismatchedSampleCounts) {
  Trace trace;
  trace.num_items = 10;
  trace.tables.resize(2);
  trace.tables[0].AppendSample(std::vector<std::uint32_t>{0});
  EXPECT_FALSE(trace.Validate().ok());
}

TEST(TraceTest, ValidateRejectsOutOfRangeIndex) {
  Trace trace;
  trace.num_items = 5;
  trace.tables.resize(1);
  trace.tables[0].AppendSample(std::vector<std::uint32_t>{5});
  EXPECT_FALSE(trace.Validate().ok());
}

TEST(TraceTest, ValidateRejectsEmptyTrace) {
  Trace trace;
  trace.num_items = 5;
  EXPECT_FALSE(trace.Validate().ok());
}

TEST(BatchTest, EvenSplit) {
  const auto batches = MakeBatches(128, 64);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].begin, 0u);
  EXPECT_EQ(batches[0].end, 64u);
  EXPECT_EQ(batches[1].begin, 64u);
  EXPECT_EQ(batches[1].end, 128u);
}

TEST(BatchTest, ShortTail) {
  const auto batches = MakeBatches(100, 64);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].size(), 36u);
}

TEST(BatchTest, EmptyInput) {
  EXPECT_TRUE(MakeBatches(0, 64).empty());
}

}  // namespace
}  // namespace updlrm::trace
