#include "trace/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/generator.h"

namespace updlrm::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const auto* dir = std::getenv("TMPDIR");
    std::string path = (dir != nullptr ? std::string(dir) : "/tmp");
    path += "/updlrm_io_test_" + name + "_" +
            std::to_string(::getpid());
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& path : paths_) std::remove(path.c_str());
  }

  std::vector<std::string> paths_;
};

Trace SmallTrace() {
  DatasetSpec spec;
  spec.name = "io";
  spec.num_items = 2'000;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 0.9;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.3;
  spec.num_hot_items = 64;
  spec.seed = 77;
  TraceGeneratorOptions options;
  options.num_samples = 50;
  options.num_tables = 3;
  auto t = TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  return std::move(t).value();
}

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Trace original = SmallTrace();
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveTrace(original, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_items, original.num_items);
  ASSERT_EQ(loaded->num_tables(), original.num_tables());
  for (std::uint32_t t = 0; t < original.num_tables(); ++t) {
    ASSERT_EQ(loaded->tables[t].num_samples(),
              original.tables[t].num_samples());
    for (std::size_t s = 0; s < original.tables[t].num_samples(); ++s) {
      const auto a = original.tables[t].Sample(s);
      const auto b = loaded->tables[t].Sample(s);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST_F(TraceIoTest, HeterogeneousRoundTrip) {
  DatasetSpec a;
  a.name = "a";
  a.num_items = 500;
  a.avg_reduction = 8.0;
  a.zipf_alpha = 0.8;
  a.seed = 3;
  DatasetSpec b = a;
  b.name = "b";
  b.num_items = 2'000;
  b.seed = 4;
  const DatasetSpec specs[] = {a, b};
  TraceGeneratorOptions options;
  options.num_samples = 40;
  auto original = GenerateHeterogeneousTrace(specs, options);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("hetero");
  ASSERT_TRUE(SaveTrace(*original, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->items_per_table.size(), 2u);
  EXPECT_EQ(loaded->ItemsInTable(0), 500u);
  EXPECT_EQ(loaded->ItemsInTable(1), 2'000u);
  EXPECT_TRUE(loaded->Validate().ok());
}

TEST_F(TraceIoTest, MissingFileIsNotFound) {
  auto loaded = LoadTrace(TempPath("does_not_exist"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(TraceIoTest, RejectsNonTraceFile) {
  const std::string path = TempPath("garbage");
  std::ofstream(path) << "this is not a trace";
  auto loaded = LoadTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, RejectsTruncatedFile) {
  const Trace original = SmallTrace();
  const std::string full = TempPath("full");
  ASSERT_TRUE(SaveTrace(original, full).ok());

  // Copy a truncated prefix.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string truncated = TempPath("truncated");
  std::ofstream(truncated, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);

  EXPECT_FALSE(LoadTrace(truncated).ok());
}

TEST_F(TraceIoTest, RejectsInvalidTraceOnSave) {
  Trace empty;  // no tables
  EXPECT_FALSE(SaveTrace(empty, TempPath("invalid")).ok());
}

TEST_F(TraceIoTest, RejectsUnwritablePath) {
  const Trace original = SmallTrace();
  EXPECT_FALSE(
      SaveTrace(original, "/nonexistent_dir_xyz/trace.bin").ok());
}

}  // namespace
}  // namespace updlrm::trace
