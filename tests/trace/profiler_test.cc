#include "trace/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace updlrm::trace {
namespace {

TableTrace MakeTrace() {
  TableTrace t;
  t.AppendSample(std::vector<std::uint32_t>{0, 1, 2});
  t.AppendSample(std::vector<std::uint32_t>{0, 1});
  t.AppendSample(std::vector<std::uint32_t>{0});
  return t;
}

TEST(ProfilerTest, ItemFrequencies) {
  const auto freq = ItemFrequencies(MakeTrace(), 4);
  ASSERT_EQ(freq.size(), 4u);
  EXPECT_EQ(freq[0], 3u);
  EXPECT_EQ(freq[1], 2u);
  EXPECT_EQ(freq[2], 1u);
  EXPECT_EQ(freq[3], 0u);
}

TEST(ProfilerTest, RowBlockCountsEvenSplit) {
  const std::vector<std::uint64_t> freq = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto blocks = RowBlockCounts(freq, 4);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0], 3u);
  EXPECT_EQ(blocks[1], 7u);
  EXPECT_EQ(blocks[2], 11u);
  EXPECT_EQ(blocks[3], 15u);
}

TEST(ProfilerTest, RowBlockCountsRemainderGoesToLastBlock) {
  const std::vector<std::uint64_t> freq = {1, 1, 1, 1, 1, 1, 1};  // 7 items
  const auto blocks = RowBlockCounts(freq, 3);                    // size 2
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], 2u);
  EXPECT_EQ(blocks[1], 2u);
  EXPECT_EQ(blocks[2], 3u);  // absorbs the remainder
  EXPECT_EQ(std::accumulate(blocks.begin(), blocks.end(), 0ull), 7ull);
}

TEST(ProfilerTest, AnalyzeSkewBalanced) {
  const std::vector<std::uint64_t> blocks = {10, 10, 10, 10};
  const auto skew = AnalyzeSkew(blocks);
  EXPECT_DOUBLE_EQ(skew.max_min_ratio, 1.0);
  EXPECT_DOUBLE_EQ(skew.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(skew.cv, 0.0);
  EXPECT_DOUBLE_EQ(skew.top_block_share, 0.25);
}

TEST(ProfilerTest, AnalyzeSkewImbalanced) {
  const std::vector<std::uint64_t> blocks = {340, 100, 10, 1};
  const auto skew = AnalyzeSkew(blocks);
  EXPECT_DOUBLE_EQ(skew.max_min_ratio, 340.0);
  EXPECT_GT(skew.gini, 0.4);
  EXPECT_NEAR(skew.top_block_share, 340.0 / 451.0, 1e-12);
}

TEST(ProfilerTest, TopKAccessShare) {
  const std::vector<std::uint64_t> freq = {1, 50, 3, 46};
  EXPECT_DOUBLE_EQ(TopKAccessShare(freq, 1), 0.5);
  EXPECT_DOUBLE_EQ(TopKAccessShare(freq, 2), 0.96);
  EXPECT_DOUBLE_EQ(TopKAccessShare(freq, 4), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccessShare(freq, 10), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(TopKAccessShare(freq, 0), 0.0);
}

TEST(ProfilerTest, ItemsByFrequencyDescendingStable) {
  const std::vector<std::uint64_t> freq = {5, 9, 5, 1};
  const auto order = ItemsByFrequency(freq);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);  // ties keep id order
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

TEST(ProfilerTest, BlockCountsPreserveTotal) {
  const auto trace = MakeTrace();
  const auto freq = ItemFrequencies(trace, 4);
  const auto blocks = RowBlockCounts(freq, 2);
  EXPECT_EQ(std::accumulate(blocks.begin(), blocks.end(), 0ull),
            trace.num_lookups());
}

}  // namespace
}  // namespace updlrm::trace
