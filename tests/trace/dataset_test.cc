#include "trace/dataset.h"

#include <gtest/gtest.h>

namespace updlrm::trace {
namespace {

TEST(DatasetTest, TableOneHasSixWorkloadsInPaperOrder) {
  const auto workloads = Table1Workloads();
  ASSERT_EQ(workloads.size(), 6u);
  EXPECT_EQ(workloads[0].name, "clo");
  EXPECT_EQ(workloads[1].name, "home");
  EXPECT_EQ(workloads[2].name, "meta1");
  EXPECT_EQ(workloads[3].name, "meta2");
  EXPECT_EQ(workloads[4].name, "read");
  EXPECT_EQ(workloads[5].name, "read2");
}

TEST(DatasetTest, TableOnePublishedStatistics) {
  const auto workloads = Table1Workloads();
  // #Items and Avg.Reduction exactly as published in Table 1.
  EXPECT_EQ(workloads[0].num_items, 2'685'059u);
  EXPECT_DOUBLE_EQ(workloads[0].avg_reduction, 52.91);
  EXPECT_EQ(workloads[1].num_items, 1'301'225u);
  EXPECT_DOUBLE_EQ(workloads[1].avg_reduction, 67.56);
  EXPECT_EQ(workloads[2].num_items, 5'783'210u);
  EXPECT_DOUBLE_EQ(workloads[2].avg_reduction, 107.2);
  EXPECT_EQ(workloads[3].num_items, 5'999'981u);
  EXPECT_DOUBLE_EQ(workloads[3].avg_reduction, 188.6);
  EXPECT_EQ(workloads[4].num_items, 2'360'650u);
  EXPECT_DOUBLE_EQ(workloads[4].avg_reduction, 245.8);
  EXPECT_EQ(workloads[5].num_items, 2'360'650u);
  EXPECT_DOUBLE_EQ(workloads[5].avg_reduction, 374.08);
}

TEST(DatasetTest, HotnessCategoriesMatchTableOne) {
  const auto w = Table1Workloads();
  EXPECT_EQ(w[0].hotness, Hotness::kLow);
  EXPECT_EQ(w[1].hotness, Hotness::kLow);
  EXPECT_EQ(w[2].hotness, Hotness::kMedium);
  EXPECT_EQ(w[3].hotness, Hotness::kMedium);
  EXPECT_EQ(w[4].hotness, Hotness::kHigh);
  EXPECT_EQ(w[5].hotness, Hotness::kHigh);
}

TEST(DatasetTest, AllBuiltInSpecsValidate) {
  for (const auto& spec : Table1Workloads()) {
    EXPECT_TRUE(spec.Validate().ok()) << spec.name;
  }
  for (const auto& spec : AccessPatternDatasets()) {
    EXPECT_TRUE(spec.Validate().ok()) << spec.name;
  }
}

TEST(DatasetTest, AccessPatternDatasetsArePresent) {
  const auto datasets = AccessPatternDatasets();
  ASSERT_EQ(datasets.size(), 3u);
  EXPECT_EQ(datasets[0].name, "goodreads");
  EXPECT_EQ(datasets[1].name, "movie");
  EXPECT_EQ(datasets[2].name, "twitch");
}

TEST(DatasetTest, FindDatasetByName) {
  auto read2 = FindDataset("read2");
  ASSERT_TRUE(read2.ok());
  EXPECT_DOUBLE_EQ(read2->avg_reduction, 374.08);
  auto movie = FindDataset("movie");
  ASSERT_TRUE(movie.ok());
  EXPECT_FALSE(FindDataset("nope").ok());
}

TEST(DatasetTest, ValidationRejectsBadSpecs) {
  DatasetSpec spec = Table1Workloads()[0];
  spec.num_items = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = Table1Workloads()[0];
  spec.avg_reduction = 0.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = Table1Workloads()[0];
  spec.rank_jitter = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = Table1Workloads()[0];
  spec.clique_prob = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(DatasetTest, BalancedSyntheticSpec) {
  const DatasetSpec spec = MakeBalancedSyntheticSpec(100'000, 150.0);
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_DOUBLE_EQ(spec.zipf_alpha, 0.0);
  EXPECT_DOUBLE_EQ(spec.clique_prob, 0.0);
  EXPECT_EQ(spec.hotness, Hotness::kMedium);
  EXPECT_EQ(MakeBalancedSyntheticSpec(1000, 50.0).hotness, Hotness::kLow);
  EXPECT_EQ(MakeBalancedSyntheticSpec(1000, 300.0).hotness, Hotness::kHigh);
}

TEST(DatasetTest, HotnessNames) {
  EXPECT_EQ(HotnessName(Hotness::kLow), "Low Hot");
  EXPECT_EQ(HotnessName(Hotness::kMedium), "Medium Hot");
  EXPECT_EQ(HotnessName(Hotness::kHigh), "High Hot");
}

}  // namespace
}  // namespace updlrm::trace
