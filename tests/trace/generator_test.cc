#include "trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "trace/profiler.h"

namespace updlrm::trace {
namespace {

DatasetSpec SmallSpec() {
  DatasetSpec spec;
  spec.name = "small";
  spec.full_name = "small test dataset";
  spec.num_items = 10'000;
  spec.avg_reduction = 20.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 256;
  spec.seed = 99;
  return spec;
}

TraceGeneratorOptions SmallOptions() {
  TraceGeneratorOptions options;
  options.num_samples = 600;
  options.num_tables = 2;
  return options;
}

TEST(GeneratorTest, ProducesValidTrace) {
  TraceGenerator gen(SmallSpec());
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->Validate().ok());
  EXPECT_EQ(trace->num_samples(), 600u);
  EXPECT_EQ(trace->num_tables(), 2u);
  EXPECT_EQ(trace->num_items, 10'000u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  TraceGenerator gen(SmallSpec());
  auto a = gen.Generate(SmallOptions());
  auto b = gen.Generate(SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::uint32_t t = 0; t < 2; ++t) {
    ASSERT_EQ(a->tables[t].num_lookups(), b->tables[t].num_lookups());
    EXPECT_TRUE(std::equal(a->tables[t].indices().begin(),
                           a->tables[t].indices().end(),
                           b->tables[t].indices().begin()));
  }
}

TEST(GeneratorTest, SeedOverrideChangesTrace) {
  TraceGenerator gen(SmallSpec());
  auto a = gen.Generate(SmallOptions());
  TraceGeneratorOptions other = SmallOptions();
  other.seed_override = 12345;
  auto b = gen.Generate(other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->tables[0].num_lookups(), b->tables[0].num_lookups());
}

TEST(GeneratorTest, TablesAreIndependent) {
  TraceGenerator gen(SmallSpec());
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(std::equal(trace->tables[0].indices().begin(),
                          trace->tables[0].indices().end(),
                          trace->tables[1].indices().begin(),
                          trace->tables[1].indices().end()));
}

TEST(GeneratorTest, AvgReductionNearTarget) {
  TraceGenerator gen(SmallSpec());
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  const double measured = trace->tables[0].MeasuredAvgReduction();
  EXPECT_NEAR(measured, 20.0, 20.0 * 0.25);
}

TEST(GeneratorTest, SamplesAreSortedUnique) {
  TraceGenerator gen(SmallSpec());
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  for (std::size_t s = 0; s < 50; ++s) {
    const auto sample = trace->tables[0].Sample(s);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()),
              sample.end());
  }
}

TEST(GeneratorTest, SkewedSpecProducesSkewedFrequencies) {
  DatasetSpec spec = SmallSpec();
  spec.zipf_alpha = 1.1;
  spec.rank_jitter = 0.05;
  TraceGenerator gen(spec);
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  const auto freq = ItemFrequencies(trace->tables[0], spec.num_items);
  const auto blocks = RowBlockCounts(freq, 8);
  const auto skew = AnalyzeSkew(blocks);
  EXPECT_GT(skew.imbalance, 2.0);
}

TEST(GeneratorTest, BalancedSyntheticIsFlat) {
  const DatasetSpec spec = MakeBalancedSyntheticSpec(10'000, 30.0);
  TraceGenerator gen(spec);
  TraceGeneratorOptions options;
  options.num_samples = 2'000;
  options.num_tables = 1;
  auto trace = gen.Generate(options);
  ASSERT_TRUE(trace.ok());
  const auto freq = ItemFrequencies(trace->tables[0], spec.num_items);
  const auto blocks = RowBlockCounts(freq, 8);
  const auto skew = AnalyzeSkew(blocks);
  EXPECT_LT(skew.imbalance, 1.1);
  EXPECT_LT(skew.max_min_ratio, 1.2);
}

TEST(GeneratorTest, DuplicateRateMatchesZipfSkew) {
  // The dedup planner's payoff rides on cross-sample duplication, so
  // the generator must reproduce the duplication a Zipf(α) stream
  // implies. With cliques and jitter off, a sample of m distinct items
  // behaves like independent Zipf draws repeated until m distinct
  // values appear (duplicates within a sample are redrawn). Solve
  // Σ_r (1 − (1 − p_r)^D) = m for the effective per-sample draw count
  // D, then the expected distinct-item count over S samples is
  // Σ_r (1 − (1 − p_r)^(S·D)).
  for (double alpha : {0.8, 1.0, 1.2}) {
    DatasetSpec spec = SmallSpec();
    spec.num_items = 2'000;
    spec.avg_reduction = 10.0;
    spec.zipf_alpha = alpha;
    spec.rank_jitter = 0.0;
    spec.clique_prob = 0.0;
    TraceGenerator gen(spec);
    TraceGeneratorOptions options;
    options.num_samples = 400;
    options.num_tables = 1;
    auto trace = gen.Generate(options);
    ASSERT_TRUE(trace.ok());

    const auto freq = ItemFrequencies(trace->tables[0], spec.num_items);
    const double refs =
        static_cast<double>(trace->tables[0].num_lookups());
    const double measured_unique = static_cast<double>(
        std::count_if(freq.begin(), freq.end(),
                      [](std::uint64_t f) { return f > 0; }));

    const ZipfSampler zipf(spec.num_items, alpha);
    const auto expected_distinct = [&](double draws) {
      double sum = 0.0;
      for (std::uint64_t r = 0; r < spec.num_items; ++r) {
        sum += 1.0 - std::pow(1.0 - zipf.Probability(r), draws);
      }
      return sum;
    };
    // Effective independent draws per sample: binary search D so that
    // E[distinct after D draws] equals the mean sample size.
    const double mean_m = refs / static_cast<double>(options.num_samples);
    double lo = mean_m, hi = 64.0 * mean_m;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (expected_distinct(mid) < mean_m ? lo : hi) = mid;
    }
    const double expected_unique =
        expected_distinct(0.5 * (lo + hi) *
                          static_cast<double>(options.num_samples));
    EXPECT_NEAR(measured_unique, expected_unique, expected_unique * 0.15)
        << "alpha " << alpha;
  }
}

TEST(GeneratorTest, DuplicateRateGrowsWithSkew) {
  // More skew concentrates references on fewer rows: the cross-sample
  // duplicate share 1 - unique/refs must rise monotonically with α.
  double prev_dup_rate = -1.0;
  for (double alpha : {0.4, 0.9, 1.4}) {
    DatasetSpec spec = SmallSpec();
    spec.num_items = 2'000;
    spec.avg_reduction = 10.0;
    spec.zipf_alpha = alpha;
    spec.rank_jitter = 0.0;
    spec.clique_prob = 0.0;
    TraceGenerator gen(spec);
    TraceGeneratorOptions options;
    options.num_samples = 400;
    options.num_tables = 1;
    auto trace = gen.Generate(options);
    ASSERT_TRUE(trace.ok());
    const auto freq = ItemFrequencies(trace->tables[0], spec.num_items);
    const double refs =
        static_cast<double>(trace->tables[0].num_lookups());
    const double unique = static_cast<double>(
        std::count_if(freq.begin(), freq.end(),
                      [](std::uint64_t f) { return f > 0; }));
    const double dup_rate = 1.0 - unique / refs;
    EXPECT_GT(dup_rate, prev_dup_rate) << "alpha " << alpha;
    prev_dup_rate = dup_rate;
  }
}

TEST(GeneratorTest, CliqueModelDeterministicAndDisjoint) {
  TraceGenerator gen(SmallSpec());
  const CliqueModel a = gen.BuildCliqueModel(0, SmallOptions());
  const CliqueModel b = gen.BuildCliqueModel(0, SmallOptions());
  ASSERT_EQ(a.cliques.size(), b.cliques.size());
  ASSERT_FALSE(a.cliques.empty());
  std::vector<std::uint32_t> all;
  for (std::size_t i = 0; i < a.cliques.size(); ++i) {
    EXPECT_EQ(a.cliques[i], b.cliques[i]);
    EXPECT_GE(a.cliques[i].size(), 2u);
    EXPECT_LE(a.cliques[i].size(), 4u);
    all.insert(all.end(), a.cliques[i].begin(), a.cliques[i].end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(GeneratorTest, CliquesActuallyCoOccur) {
  // Planted cliques must appear together far more often than chance:
  // count samples containing every member of some clique.
  DatasetSpec spec = SmallSpec();
  spec.clique_prob = 0.7;
  TraceGenerator gen(spec);
  auto trace = gen.Generate(SmallOptions());
  ASSERT_TRUE(trace.ok());
  const CliqueModel model = gen.BuildCliqueModel(0, SmallOptions());
  ASSERT_FALSE(model.cliques.empty());
  const auto& clique = model.cliques.front();  // hottest clique
  std::size_t together = 0;
  for (std::size_t s = 0; s < trace->num_samples(); ++s) {
    const auto sample = trace->tables[0].Sample(s);
    bool all = true;
    for (std::uint32_t item : clique) {
      if (!std::binary_search(sample.begin(), sample.end(), item)) {
        all = false;
        break;
      }
    }
    if (all) ++together;
  }
  EXPECT_GT(together, trace->num_samples() / 20);
}

TEST(GeneratorTest, DriftShiftsSecondHalfPopularity) {
  DatasetSpec spec = SmallSpec();
  spec.zipf_alpha = 1.1;
  spec.rank_jitter = 0.05;
  spec.clique_prob = 0.0;
  TraceGenerator gen(spec);
  TraceGeneratorOptions options = SmallOptions();
  options.num_samples = 1'000;
  options.popularity_drift = 1.0;
  auto trace = gen.Generate(options);
  ASSERT_TRUE(trace.ok());

  // Frequency histograms of the two halves.
  auto half_freq = [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint64_t> freq(spec.num_items, 0);
    for (std::size_t s = begin; s < end; ++s) {
      for (std::uint32_t idx : trace->tables[0].Sample(s)) ++freq[idx];
    }
    return freq;
  };
  const auto first = half_freq(0, 500);
  const auto second = half_freq(500, 1'000);

  // The top-100 item sets of the two halves should barely overlap at
  // full drift.
  const auto top_first = ItemsByFrequency(first);
  const auto top_second = ItemsByFrequency(second);
  std::size_t overlap = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 100; ++j) {
      if (top_first[i] == top_second[j]) {
        ++overlap;
        break;
      }
    }
  }
  EXPECT_LT(overlap, 35u);
}

TEST(GeneratorTest, ZeroDriftIsStationary) {
  DatasetSpec spec = SmallSpec();
  TraceGenerator gen(spec);
  TraceGeneratorOptions with = SmallOptions();
  with.popularity_drift = 0.0;
  TraceGeneratorOptions without = SmallOptions();
  auto a = gen.Generate(with);
  auto b = gen.Generate(without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(std::equal(a->tables[0].indices().begin(),
                         a->tables[0].indices().end(),
                         b->tables[0].indices().begin(),
                         b->tables[0].indices().end()));
}

TEST(GeneratorTest, DriftRejectsOutOfRange) {
  TraceGenerator gen(SmallSpec());
  TraceGeneratorOptions options = SmallOptions();
  options.popularity_drift = 1.5;
  EXPECT_FALSE(gen.Generate(options).ok());
  options.popularity_drift = -0.1;
  EXPECT_FALSE(gen.Generate(options).ok());
}

TEST(GeneratorTest, DriftKeepsTraceValid) {
  TraceGenerator gen(SmallSpec());
  TraceGeneratorOptions options = SmallOptions();
  options.popularity_drift = 0.5;
  auto trace = gen.Generate(options);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->Validate().ok());
  EXPECT_NEAR(trace->tables[0].MeasuredAvgReduction(), 20.0, 20.0 * 0.25);
}

TEST(GeneratorTest, RejectsInvalidOptions) {
  TraceGenerator gen(SmallSpec());
  TraceGeneratorOptions options;
  options.num_samples = 0;
  EXPECT_FALSE(gen.Generate(options).ok());
  options.num_samples = 10;
  options.num_tables = 0;
  EXPECT_FALSE(gen.Generate(options).ok());
}

TEST(GeneratorTest, RejectsInvalidSpec) {
  DatasetSpec spec = SmallSpec();
  spec.avg_reduction = 0.0;
  TraceGenerator gen(spec);
  EXPECT_FALSE(gen.Generate(SmallOptions()).ok());
}

TEST(GeneratorTest, TinySupportClampsReduction) {
  DatasetSpec spec = SmallSpec();
  spec.num_items = 8;  // fewer items than avg_reduction
  spec.num_hot_items = 4;
  TraceGenerator gen(spec);
  TraceGeneratorOptions options;
  options.num_samples = 50;
  options.num_tables = 1;
  auto trace = gen.Generate(options);
  ASSERT_TRUE(trace.ok());
  for (std::size_t s = 0; s < trace->num_samples(); ++s) {
    EXPECT_LE(trace->tables[0].Sample(s).size(), 8u);
    EXPECT_GE(trace->tables[0].Sample(s).size(), 1u);
  }
}

}  // namespace
}  // namespace updlrm::trace
