// Injected-fault coverage of the shadow-state access validator: one
// deliberate violation per hardware rule (alignment, DMA size, bank
// bounds, uninitialized read, region overlap), plus the clean-path and
// interval-set behavior the rules depend on.
#include "check/access_validator.h"

#include <gtest/gtest.h>

#include "check/report.h"

namespace updlrm::check {
namespace {

constexpr std::uint64_t kBank = 64 * 1024 * 1024;

AccessLimits Limits() {
  return AccessLimits{.bank_bytes = kBank, .alignment = 8,
                      .max_dma_bytes = 2048};
}

TEST(AccessValidatorTest, CleanAccessesReportNothing) {
  CheckReport report;
  AccessValidator v(2, Limits(), &report);
  v.RegisterRegion(0, RegionKind::kEmt, 0, 4096);
  v.RegisterRegion(0, RegionKind::kCache, 4096, 4096);
  v.OnWrite(0, 0, 256);
  v.OnRead(0, 0, 256);
  v.OnDma(0, 0, 2048, false);
  v.OnDma(0, 8, 8, true);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// Rule: kDmaAlignment — misaligned offset.
TEST(AccessValidatorTest, MisalignedOffsetFires) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnWrite(0, 4, 8);
  EXPECT_EQ(report.count(Rule::kDmaAlignment), 1u);
  EXPECT_NE(report.first_offender(Rule::kDmaAlignment).find("offset"),
            std::string::npos);
}

// Rule: kDmaAlignment — DMA size not 8-byte aligned.
TEST(AccessValidatorTest, MisalignedDmaSizeFires) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnDma(0, 0, 12, false);
  EXPECT_EQ(report.count(Rule::kDmaAlignment), 1u);
}

// Rule: kDmaSize — transfers of 0 or > 2048 bytes.
TEST(AccessValidatorTest, OversizedAndZeroDmaFire) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnDma(0, 0, 4096, true);
  EXPECT_EQ(report.count(Rule::kDmaSize), 1u);
  v.OnDma(0, 0, 0, false);
  EXPECT_EQ(report.count(Rule::kDmaSize), 2u);
}

// Rule: kBankBounds — access beyond the 64 MB bank.
TEST(AccessValidatorTest, OutOfBankAccessFires) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnWrite(0, kBank - 8, 16);  // straddles the end
  EXPECT_EQ(report.count(Rule::kBankBounds), 1u);
  v.OnRead(0, kBank + 1024, 8);  // fully outside (and unwritten)
  EXPECT_EQ(report.count(Rule::kBankBounds), 2u);
}

// Rule: kUninitRead — reading bytes never written.
TEST(AccessValidatorTest, UninitializedReadFires) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnWrite(0, 0, 64);
  v.OnRead(0, 0, 64);  // fine: fully covered
  EXPECT_EQ(report.count(Rule::kUninitRead), 0u);
  v.OnRead(0, 64, 8);  // one past the written range
  EXPECT_EQ(report.count(Rule::kUninitRead), 1u);
  v.OnRead(0, 56, 16);  // half written, half cold
  EXPECT_EQ(report.count(Rule::kUninitRead), 2u);
}

// Rule: kRegionOverlap — EMT and cache regions intersecting.
TEST(AccessValidatorTest, OverlappingRegionsFire) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.RegisterRegion(0, RegionKind::kEmt, 0, 4096);
  v.RegisterRegion(0, RegionKind::kCache, 4088, 4096);
  EXPECT_EQ(report.count(Rule::kRegionOverlap), 1u);
  const std::string ctx = report.first_offender(Rule::kRegionOverlap);
  EXPECT_NE(ctx.find("cache"), std::string::npos);
  EXPECT_NE(ctx.find("emt"), std::string::npos);
}

TEST(AccessValidatorTest, AdjacentAndZeroByteRegionsNeverOverlap) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.RegisterRegion(0, RegionKind::kEmt, 0, 4096);
  v.RegisterRegion(0, RegionKind::kCache, 4096, 4096);  // adjacent
  v.RegisterRegion(0, RegionKind::kReplica, 2048, 0);   // empty
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(AccessValidatorTest, RegionBeyondBankFires) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.RegisterRegion(0, RegionKind::kOutput, kBank - 1024, 4096);
  EXPECT_EQ(report.count(Rule::kBankBounds), 1u);
}

TEST(AccessValidatorTest, WrittenIntervalsMergeAcrossWrites) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnWrite(0, 0, 32);
  v.OnWrite(0, 64, 32);
  EXPECT_FALSE(v.IsWritten(0, 0, 96));  // hole at [32, 64)
  v.OnWrite(0, 32, 32);                 // fill the hole
  EXPECT_TRUE(v.IsWritten(0, 0, 96));
  v.OnRead(0, 0, 96);
  EXPECT_EQ(report.count(Rule::kUninitRead), 0u);
}

TEST(AccessValidatorTest, ShadowStateIsPerDpu) {
  CheckReport report;
  AccessValidator v(2, Limits(), &report);
  v.OnWrite(0, 0, 64);
  EXPECT_TRUE(v.IsWritten(0, 0, 64));
  EXPECT_FALSE(v.IsWritten(1, 0, 64));
  v.OnRead(1, 0, 64);
  EXPECT_EQ(report.count(Rule::kUninitRead), 1u);
}

TEST(AccessValidatorTest, ResetDropsShadowStateOnly) {
  CheckReport report;
  AccessValidator v(1, Limits(), &report);
  v.OnWrite(0, 0, 64);
  v.OnDma(0, 0, 4096, false);
  v.Reset();
  EXPECT_FALSE(v.IsWritten(0, 0, 64));
  // Report survives a shadow reset (it belongs to the run, not the
  // engine instance).
  EXPECT_EQ(report.count(Rule::kDmaSize), 1u);
}

}  // namespace
}  // namespace updlrm::check
