// Injected-fault tests of the vector-clock protocol verifier: the
// shipped protocols verify clean, and removing any single
// happens-before edge flips Rule::kAtomicProtocol — proving both that
// the edge is load-bearing and that the machine detects its absence.
#include "check/race_check.h"

#include <gtest/gtest.h>

#include "check/report.h"

namespace updlrm::check {
namespace {

// --- The machine itself. ---

TEST(RaceCheckTest, ReleaseAcquireOrdersPlainAccess) {
  CheckReport report;
  RaceCheck rc(&report);
  const auto a = rc.NewThread("a");
  const auto b = rc.ForkThread(a, "b");
  const auto flag = rc.NewAtomicLoc("flag");
  const auto data = rc.NewPlainLoc("data");

  rc.PlainWrite(a, data);
  rc.ReleaseStore(a, flag);
  rc.AcquireLoad(b, flag);
  rc.PlainRead(b, data);
  EXPECT_EQ(rc.violations(), 0u);
  EXPECT_TRUE(report.clean());
}

TEST(RaceCheckTest, RelaxedPublishIsARace) {
  CheckReport report;
  RaceCheck rc(&report);
  const auto a = rc.NewThread("a");
  const auto b = rc.ForkThread(a, "b");
  const auto flag = rc.NewAtomicLoc("flag");
  const auto data = rc.NewPlainLoc("data");

  rc.PlainWrite(a, data);
  rc.RelaxedStore(a, flag);  // publishes nothing
  rc.AcquireLoad(b, flag);
  rc.PlainRead(b, data);
  EXPECT_EQ(rc.violations(), 1u);
  EXPECT_EQ(report.count(Rule::kAtomicProtocol), 1u);
  EXPECT_NE(report.first_offender(Rule::kAtomicProtocol).find("data"),
            std::string::npos);
}

TEST(RaceCheckTest, ForkAndJoinEdgesOrderAccesses) {
  CheckReport report;
  RaceCheck rc(&report);
  const auto main = rc.NewThread("main");
  const auto data = rc.NewPlainLoc("data");
  rc.PlainWrite(main, data);
  const auto worker = rc.ForkThread(main, "worker");
  rc.PlainWrite(worker, data);  // ordered by the fork edge
  rc.JoinThread(main, worker);
  rc.PlainWrite(main, data);  // ordered by the join edge
  EXPECT_EQ(rc.violations(), 0u);
}

TEST(RaceCheckTest, ConcurrentWritesRaceBothWays) {
  CheckReport report;
  RaceCheck rc(&report);
  const auto a = rc.NewThread("a");
  const auto b = rc.ForkThread(a, "b");
  const auto data = rc.NewPlainLoc("data");
  rc.PlainWrite(a, data);
  rc.PlainWrite(b, data);  // no edge between the writes
  EXPECT_EQ(rc.violations(), 1u);
}

TEST(RaceCheckTest, ConcurrentReadsDoNotRace) {
  CheckReport report;
  RaceCheck rc(&report);
  const auto a = rc.NewThread("a");
  const auto data = rc.NewPlainLoc("data");
  rc.PlainWrite(a, data);
  const auto b = rc.ForkThread(a, "b");
  const auto c = rc.ForkThread(a, "c");
  rc.PlainRead(b, data);
  rc.PlainRead(c, data);  // readers may be concurrent with each other
  EXPECT_EQ(rc.violations(), 0u);
  // ... but a write unordered against either reader races.
  rc.PlainWrite(a, data);
  EXPECT_EQ(rc.violations(), 2u);
}

// --- Telemetry ring-buffer protocol. ---

TEST(RaceCheckTest, TelemetryRingProtocolVerifiesClean) {
  CheckReport report;
  EXPECT_EQ(VerifyTelemetryRingProtocol(RaceFault::kNone, &report), 0u);
  EXPECT_TRUE(report.clean());
}

TEST(RaceCheckTest, RelaxedRingSizeStoreFlipsAtomicProtocol) {
  CheckReport report;
  EXPECT_GT(
      VerifyTelemetryRingProtocol(RaceFault::kRingSizeStoreRelaxed, &report),
      0u);
  EXPECT_GT(report.count(Rule::kAtomicProtocol), 0u);
}

TEST(RaceCheckTest, RelaxedSnapshotLoadFlipsAtomicProtocol) {
  CheckReport report;
  EXPECT_GT(
      VerifyTelemetryRingProtocol(RaceFault::kRingSnapshotRelaxed, &report),
      0u);
  EXPECT_GT(report.count(Rule::kAtomicProtocol), 0u);
}

// --- ParallelFor recycling protocol. ---

TEST(RaceCheckTest, WorkStealProtocolVerifiesClean) {
  CheckReport report;
  EXPECT_EQ(VerifyWorkStealProtocol(RaceFault::kNone, &report), 0u);
  EXPECT_TRUE(report.clean());
}

TEST(RaceCheckTest, SkippingTheDrainSpinFlipsAtomicProtocol) {
  CheckReport report;
  EXPECT_GT(VerifyWorkStealProtocol(RaceFault::kStealNoDrainSpin, &report),
            0u);
  EXPECT_GT(report.count(Rule::kAtomicProtocol), 0u);
}

TEST(RaceCheckTest, RelaxedParticipantsDecrementFlipsAtomicProtocol) {
  CheckReport report;
  EXPECT_GT(VerifyWorkStealProtocol(RaceFault::kStealDoneRelaxed, &report),
            0u);
  EXPECT_GT(report.count(Rule::kAtomicProtocol), 0u);
}

TEST(RaceCheckTest, StaleHelperWithoutTicketSyncFlipsAtomicProtocol) {
  CheckReport report;
  EXPECT_GT(VerifyWorkStealProtocol(RaceFault::kStealNoTicketSync, &report),
            0u);
  EXPECT_GT(report.count(Rule::kAtomicProtocol), 0u);
}

// --- Determinism and reporting. ---

TEST(RaceCheckTest, VerificationIsDeterministic) {
  for (const RaceFault fault :
       {RaceFault::kNone, RaceFault::kRingSizeStoreRelaxed,
        RaceFault::kStealDoneRelaxed, RaceFault::kStealNoTicketSync}) {
    CheckReport r1;
    CheckReport r2;
    EXPECT_EQ(VerifyTelemetryRingProtocol(fault, &r1),
              VerifyTelemetryRingProtocol(fault, &r2));
    EXPECT_EQ(VerifyWorkStealProtocol(fault, &r1),
              VerifyWorkStealProtocol(fault, &r2));
    EXPECT_EQ(r1.count(Rule::kAtomicProtocol),
              r2.count(Rule::kAtomicProtocol));
  }
}

TEST(RaceCheckTest, SweepReportsUnderTheAtomicProtocolRule) {
  CheckReport report;
  VerifyAtomicProtocols(&report);
  EXPECT_TRUE(report.clean());
  // A faulted run names the racing location in the offender context.
  VerifyWorkStealProtocol(RaceFault::kStealNoDrainSpin, &report);
  EXPECT_NE(report.first_offender(Rule::kAtomicProtocol).find("state."),
            std::string::npos);
  EXPECT_NE(report.ToString().find("atomic-protocol"), std::string::npos);
}

}  // namespace
}  // namespace updlrm::check
