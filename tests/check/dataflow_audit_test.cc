#include "check/dataflow_audit.h"

#include <gtest/gtest.h>

namespace updlrm::check {
namespace {

// ---- Plan shape. ----

DataFlowShape LegalShape() {
  DataFlowShape s;
  s.depth = 2;
  s.bottom_overlap_layers = 1;
  s.bottom_layers = 3;
  s.bottom_on_gpu = false;
  s.top_on_gpu = true;
  s.gpu_available = true;
  return s;
}

TEST(DataFlowShapeAudit, CleanShapeAddsNothing) {
  CheckReport report;
  AuditDataFlowShape(LegalShape(), &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(DataFlowShapeAudit, FiresOnZeroDepth) {
  CheckReport report;
  DataFlowShape s = LegalShape();
  s.depth = 0;
  AuditDataFlowShape(s, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowShape), 1u);
}

TEST(DataFlowShapeAudit, FiresOnExcessiveDepth) {
  CheckReport report;
  DataFlowShape s = LegalShape();
  s.depth = kMaxPipelineDepth + 1;
  AuditDataFlowShape(s, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowShape), 1u);
  EXPECT_NE(report.first_offender(Rule::kDataFlowShape).find("depth"),
            std::string::npos);
}

TEST(DataFlowShapeAudit, FiresOnOverlapSplitBeyondStack) {
  CheckReport report;
  DataFlowShape s = LegalShape();
  s.bottom_overlap_layers = 4;  // stack has 3
  AuditDataFlowShape(s, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowShape), 1u);
}

TEST(DataFlowShapeAudit, FiresOnGpuPlacementWithoutGpu) {
  CheckReport report;
  DataFlowShape s = LegalShape();
  s.gpu_available = false;  // but top_on_gpu stays true
  AuditDataFlowShape(s, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowShape), 1u);
  EXPECT_NE(report.first_offender(Rule::kDataFlowShape).find("GPU"),
            std::string::npos);
}

// ---- In-flight IO capacity. ----

TEST(DataFlowCapacityAudit, CleanWhenBufferPairsFit) {
  CheckReport report;
  DataFlowCapacity cap;
  cap.depth = 2;
  cap.max_index_bytes = 1024;
  cap.max_output_bytes = 4096;
  cap.index_region_bytes = 4 * 1024;
  cap.output_region_bytes = 16 * 1024;
  AuditDataFlowCapacity(cap, &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(DataFlowCapacityAudit, FiresWhenDepthOverflowsIndexRegion) {
  CheckReport report;
  DataFlowCapacity cap;
  cap.depth = 4;
  cap.max_index_bytes = 2048;  // 4 x 2048 > 4096
  cap.max_output_bytes = 16;
  cap.index_region_bytes = 4096;
  cap.output_region_bytes = 4096;
  AuditDataFlowCapacity(cap, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowCapacity), 1u);
  EXPECT_NE(report.first_offender(Rule::kDataFlowCapacity).find("index"),
            std::string::npos);
}

TEST(DataFlowCapacityAudit, FiresWhenDepthOverflowsOutputRegion) {
  CheckReport report;
  DataFlowCapacity cap;
  cap.depth = 2;
  cap.max_index_bytes = 16;
  cap.max_output_bytes = 3000;  // 2 x 3000 > 4096
  cap.index_region_bytes = 4096;
  cap.output_region_bytes = 4096;
  AuditDataFlowCapacity(cap, &report);
  EXPECT_EQ(report.count(Rule::kDataFlowCapacity), 1u);
  EXPECT_NE(report.first_offender(Rule::kDataFlowCapacity).find("output"),
            std::string::npos);
}

// ---- Stage ordering. ----

StageInstants WellOrdered() {
  StageInstants t;
  t.cut_ns = 100;
  t.bpre_start_ns = 100;
  t.bpre_end_ns = 150;
  t.s1_start_ns = 100;
  t.s1_end_ns = 200;
  t.s2_start_ns = 200;
  t.s2_end_ns = 400;
  t.s3_start_ns = 410;
  t.s3_end_ns = 500;
  t.bottom_done_ns = 450;
  t.top_start_ns = 500;
  t.top_end_ns = 600;
  return t;
}

TEST(StageOrderingAudit, CleanBatchAddsNothing) {
  CheckReport report;
  AuditStageOrdering(0, WellOrdered(), &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(StageOrderingAudit, ExactlyTouchingStagesAreClean) {
  // Back-to-back scheduling (end == next start) is the common case and
  // must not fire.
  CheckReport report;
  StageInstants t = WellOrdered();
  t.s3_start_ns = t.s2_end_ns;
  t.top_start_ns = t.s3_end_ns;
  AuditStageOrdering(3, t, &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(StageOrderingAudit, FiresWhenStageStartsBeforeCut) {
  CheckReport report;
  StageInstants t = WellOrdered();
  t.s1_start_ns = t.cut_ns - 50;
  AuditStageOrdering(7, t, &report);
  EXPECT_GE(report.count(Rule::kStageOrdering), 1u);
  EXPECT_NE(report.first_offender(Rule::kStageOrdering).find("batch 7"),
            std::string::npos);
}

TEST(StageOrderingAudit, FiresWhenLookupPrecedesPush) {
  CheckReport report;
  StageInstants t = WellOrdered();
  t.s2_start_ns = t.s1_end_ns - 10;
  AuditStageOrdering(0, t, &report);
  EXPECT_EQ(report.count(Rule::kStageOrdering), 1u);
}

TEST(StageOrderingAudit, FiresWhenTopIgnoresBottomDependency) {
  CheckReport report;
  StageInstants t = WellOrdered();
  t.bottom_done_ns = t.top_start_ns + 25;  // top started too early
  AuditStageOrdering(0, t, &report);
  EXPECT_GE(report.count(Rule::kStageOrdering), 1u);
}

TEST(StageOrderingAudit, FiresOnNegativeDuration) {
  CheckReport report;
  StageInstants t = WellOrdered();
  t.s3_end_ns = t.s3_start_ns - 1;
  AuditStageOrdering(0, t, &report);
  EXPECT_GE(report.count(Rule::kStageOrdering), 1u);
}

}  // namespace
}  // namespace updlrm::check
