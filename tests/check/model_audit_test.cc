// Model/sim cross-audit: the analytic cost model's claims must land
// inside the declared executed/claimed band, honest claims pass, and a
// drifted claim (the injected fault) fires kModelSimDivergence.
#include "check/model_audit.h"

#include <gtest/gtest.h>

#include "check/report.h"

namespace updlrm::check {
namespace {

pim::EmbeddingKernelWork TypicalWork() {
  pim::EmbeddingKernelWork work;
  work.num_lookups = 300;
  work.num_cache_reads = 40;
  work.num_samples = 16;
  work.row_bytes = 16;
  return work;
}

struct AuditUnderTest {
  CheckReport report;
  pim::DpuConfig dpu;
  pim::EmbeddingKernelCostParams params;
  pim::MramTimingParams mram;
  pim::EmbeddingKernelCostModel model{params, dpu,
                                      pim::MramTimingModel(mram)};
  ModelAudit audit{dpu, params, mram, ModelAuditTolerance{}, &report};
};

TEST(ModelAuditTest, HonestClaimsPassAcrossWorkShapes) {
  AuditUnderTest t;
  for (std::uint64_t lookups : {1u, 64u, 900u}) {
    for (std::uint32_t row_bytes : {8u, 16u, 32u}) {
      pim::EmbeddingKernelWork work;
      work.num_lookups = lookups;
      work.num_samples = 16;
      work.row_bytes = row_bytes;
      t.audit.AuditKernel(work, t.model.KernelCycles(work));
    }
  }
  EXPECT_TRUE(t.report.clean()) << t.report.ToString();
}

TEST(ModelAuditTest, LeverWorkShapesPassToo) {
  AuditUnderTest t;
  pim::EmbeddingKernelWork work = TypicalWork();
  work.num_wram_hits = 120;
  work.num_gather_refs = 80;
  t.audit.AuditKernel(work, t.model.KernelCycles(work));
  EXPECT_TRUE(t.report.clean()) << t.report.ToString();
}

// Injected fault: a claim inflated far beyond any tail effect.
TEST(ModelAuditTest, InflatedClaimFiresDivergence) {
  AuditUnderTest t;
  const pim::EmbeddingKernelWork work = TypicalWork();
  t.audit.AuditKernel(work, t.model.KernelCycles(work) * 10);
  EXPECT_EQ(t.report.count(Rule::kModelSimDivergence), 1u);
  EXPECT_NE(
      t.report.first_offender(Rule::kModelSimDivergence).find("ratio"),
      std::string::npos);
}

// Injected fault: a claim far below the executed makespan (a phase the
// model forgot to price).
TEST(ModelAuditTest, UnderpricedClaimFiresDivergence) {
  AuditUnderTest t;
  const pim::EmbeddingKernelWork work = TypicalWork();
  t.audit.AuditKernel(work, t.model.KernelCycles(work) / 10);
  EXPECT_EQ(t.report.count(Rule::kModelSimDivergence), 1u);
}

TEST(ModelAuditTest, EmptyWorkMustClaimZero) {
  AuditUnderTest t;
  const pim::EmbeddingKernelWork empty;
  t.audit.AuditKernel(empty, 0);
  EXPECT_TRUE(t.report.clean());
  t.audit.AuditKernel(empty, 1'000);
  EXPECT_EQ(t.report.count(Rule::kModelSimDivergence), 1u);
}

TEST(ModelAuditTest, MemoizesDistinctWorkShapes) {
  AuditUnderTest t;
  const pim::EmbeddingKernelWork work = TypicalWork();
  const Cycles claimed = t.model.KernelCycles(work);
  for (int i = 0; i < 50; ++i) t.audit.AuditKernel(work, claimed);
  EXPECT_EQ(t.audit.simulated(), 1u);
  pim::EmbeddingKernelWork other = work;
  other.num_lookups += 1;
  t.audit.AuditKernel(other, t.model.KernelCycles(other));
  EXPECT_EQ(t.audit.simulated(), 2u);
  EXPECT_TRUE(t.report.clean()) << t.report.ToString();
}

TEST(ModelAuditTest, CustomToleranceRespected) {
  CheckReport report;
  pim::DpuConfig dpu;
  pim::EmbeddingKernelCostParams params;
  pim::MramTimingParams mram;
  // A band so tight nothing realistic fits: everything diverges.
  ModelAudit audit(dpu, params, mram,
                   ModelAuditTolerance{.min_ratio = 0.9999,
                                       .max_ratio = 1.0001},
                   &report);
  pim::EmbeddingKernelCostModel model(params, dpu,
                                      pim::MramTimingModel(mram));
  const pim::EmbeddingKernelWork work = TypicalWork();
  audit.AuditKernel(work, model.KernelCycles(work) * 2);
  EXPECT_EQ(report.count(Rule::kModelSimDivergence), 1u);
}

}  // namespace
}  // namespace updlrm::check
