// Injected-fault coverage of the static plan auditor: one deliberate
// fault per rule (plan coverage, plan capacity, cache co-location, tile
// shape, gather-map bounds, WRAM capacity, transfer plan), each proven
// to fire against a plan that is clean without the fault.
#include "check/plan_audit.h"

#include <gtest/gtest.h>

#include "check/report.h"
#include "partition/uniform.h"

namespace updlrm::check {
namespace {

partition::PartitionPlan SmallPlan() {
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{.rows = 64, .cols = 16}, /*dpus_per_table=*/8,
      /*nc=*/4);
  UPDLRM_CHECK(geom.ok());
  auto plan = partition::UniformPartition(*geom);
  UPDLRM_CHECK(plan.ok());
  return std::move(plan).value();
}

PlanAuditLimits AmpleLimits() {
  return PlanAuditLimits{.emt_bytes = 1 << 20, .cache_bytes = 1 << 20};
}

TEST(PlanAuditTest, CleanUniformPlanReportsNothing) {
  CheckReport report;
  AuditPlan(SmallPlan(), AmpleLimits(), &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

// Rule: kPlanCoverage — a row assigned to a bin that does not exist.
TEST(PlanAuditTest, OutOfRangeBinFiresCoverage) {
  partition::PartitionPlan plan = SmallPlan();
  plan.row_bin[7] = plan.geom.row_shards + 3;
  CheckReport report;
  AuditPlan(plan, AmpleLimits(), &report);
  EXPECT_GE(report.count(Rule::kPlanCoverage), 1u);
}

// Rule: kPlanCoverage — row coverage not exact (truncated map).
TEST(PlanAuditTest, TruncatedRowBinFiresCoverage) {
  partition::PartitionPlan plan = SmallPlan();
  plan.row_bin.pop_back();
  CheckReport report;
  AuditPlan(plan, AmpleLimits(), &report);
  EXPECT_EQ(report.count(Rule::kPlanCoverage), 1u);
}

// Rule: kPlanCoverage — one row claimed by two cache lists (two homes).
TEST(PlanAuditTest, RowInTwoCacheListsFiresCoverage) {
  partition::PartitionPlan plan = SmallPlan();
  plan.cache.lists.push_back(cache::CacheList{{1, 2}, 10.0});
  plan.cache.lists.push_back(cache::CacheList{{2, 3}, 5.0});
  plan.list_bin = {0, 1};
  // BuildItemToList itself aborts on overlap; hand-build the last-wins
  // map the corrupted plan implies.
  plan.item_list.assign(plan.geom.table.rows, -1);
  plan.item_list[1] = 0;
  plan.item_list[2] = 1;
  plan.item_list[3] = 1;
  CheckReport report;
  AuditPlan(plan, AmpleLimits(), &report);
  EXPECT_GE(report.count(Rule::kPlanCoverage), 1u);
}

// Rule: kPlanCapacity — a bin's tile exceeding the EMT region.
TEST(PlanAuditTest, OverfullBinFiresCapacity) {
  partition::PartitionPlan plan = SmallPlan();
  PlanAuditLimits limits = AmpleLimits();
  // 64 rows / 4 bins = 16 rows x 16 bytes per bin; allow only 8 rows.
  limits.emt_bytes = 8 * plan.geom.row_bytes();
  CheckReport report;
  AuditPlan(plan, limits, &report);
  EXPECT_GE(report.count(Rule::kPlanCapacity), 1u);
}

// Rule: kCacheColocation — item_list disagreeing with the lists.
TEST(PlanAuditTest, InconsistentItemListFiresColocation) {
  partition::PartitionPlan plan = SmallPlan();
  plan.cache.lists.push_back(cache::CacheList{{1, 2}, 10.0});
  plan.list_bin = {0};
  plan.item_list = plan.cache.BuildItemToList(plan.geom.table.rows);
  plan.item_list[5] = 0;  // row 5 claims list 0 membership it lacks
  CheckReport report;
  AuditPlan(plan, AmpleLimits(), &report);
  EXPECT_EQ(report.count(Rule::kCacheColocation), 1u);
}

// Rule: kCacheColocation — a list placed in a bin that does not exist.
TEST(PlanAuditTest, UnplacedListFiresColocation) {
  partition::PartitionPlan plan = SmallPlan();
  plan.cache.lists.push_back(cache::CacheList{{1, 2}, 10.0});
  plan.list_bin = {-1};
  plan.item_list = plan.cache.BuildItemToList(plan.geom.table.rows);
  CheckReport report;
  AuditPlan(plan, AmpleLimits(), &report);
  EXPECT_GE(report.count(Rule::kCacheColocation), 1u);
}

// Rule: kTileShape — Nc outside the §3.1 uniform-model claim.
TEST(PlanAuditTest, WideNcUnderModelClaimFiresTileShape) {
  auto geom = partition::GroupGeometry::Make(
      dlrm::TableShape{.rows = 64, .cols = 32}, /*dpus_per_table=*/4,
      /*nc=*/16);
  UPDLRM_CHECK(geom.ok());
  auto plan = partition::UniformPartition(*geom);
  UPDLRM_CHECK(plan.ok());
  PlanAuditLimits limits = AmpleLimits();
  CheckReport report;
  AuditPlan(*plan, limits, &report);
  EXPECT_EQ(report.count(Rule::kTileShape), 0u);  // no claim, no rule
  limits.claims_uniform_model = true;
  AuditPlan(*plan, limits, &report);
  EXPECT_EQ(report.count(Rule::kTileShape), 1u);
}

// Rule: kGatherBounds — an applied dedup plan outside uint16 range.
TEST(PlanAuditTest, OversizedDedupPlanFiresGatherBounds) {
  CheckReport report;
  AuditDedupBounds(/*applied=*/true, /*unique_total=*/70'000,
                   /*refs=*/80'000, &report);
  EXPECT_EQ(report.count(Rule::kGatherBounds), 1u);
  // Not applied: the raw wire format carries no gather map.
  AuditDedupBounds(false, 70'000, 80'000, &report);
  EXPECT_EQ(report.count(Rule::kGatherBounds), 1u);
  // Applied and in range: clean.
  AuditDedupBounds(true, 100, 400, &report);
  EXPECT_EQ(report.count(Rule::kGatherBounds), 1u);
  // Refs fewer than uniques: the gather map cannot replay the list.
  AuditDedupBounds(true, 400, 100, &report);
  EXPECT_EQ(report.count(Rule::kGatherBounds), 2u);
}

// Rule: kWramCapacity — pinning beyond the kernel's clamp.
TEST(PlanAuditTest, OverfullWramTierFiresCapacity) {
  CheckReport report;
  AuditWramCapacity(/*bin=*/2, /*pinned_rows=*/512, /*max_rows=*/512,
                    &report);
  EXPECT_EQ(report.count(Rule::kWramCapacity), 0u);
  AuditWramCapacity(2, 513, 512, &report);
  EXPECT_EQ(report.count(Rule::kWramCapacity), 1u);
  EXPECT_NE(report.first_offender(Rule::kWramCapacity).find("bin 2"),
            std::string::npos);
}

// Rule: kTransferPlan — a coalesced plan losing to a classic path.
TEST(PlanAuditTest, RegressingTransferPlanFires) {
  CheckReport report;
  AuditTransferPlan(/*plan_ns=*/90.0, /*padded_ns=*/100.0,
                    /*ragged_ns=*/120.0, &report);
  EXPECT_EQ(report.count(Rule::kTransferPlan), 0u);
  AuditTransferPlan(101.0, 100.0, 120.0, &report);
  EXPECT_EQ(report.count(Rule::kTransferPlan), 1u);
}

}  // namespace
}  // namespace updlrm::check
