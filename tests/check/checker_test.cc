// End-to-end checker integration: a functional engine with check_mode
// on must run the full trace with a clean report (the engine obeys its
// own hardware contract), the observer lifecycle must be precise
// (attach installs, detach removes only its own), and check-mode must
// not change simulated results.
#include "check/checker.h"

#include <gtest/gtest.h>

#include <memory>

#include "check/report.h"
#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::check {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
};

Fixture MakeFixture(bool functional = true, std::uint64_t seed = 31) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = seed;
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  trace::DatasetSpec spec;
  spec.name = "chk";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();
  return f;
}

core::EngineOptions CheckedOptions(partition::Method method,
                                   std::uint32_t nc = 4) {
  core::EngineOptions options;
  options.method = method;
  options.nc = nc;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  options.check_mode = true;
  return options;
}

TEST(CheckerTest, FunctionalEngineRunsCleanUnderAllMethods) {
  for (const partition::Method method :
       {partition::Method::kUniform, partition::Method::kNonUniform,
        partition::Method::kCacheAware}) {
    Fixture f = MakeFixture();
    auto engine =
        core::UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                   f.system.get(), CheckedOptions(method));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_NE((*engine)->check_report(), nullptr);
    auto report = (*engine)->RunAll(nullptr);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ((*engine)->check_violations(), 0u)
        << partition::MethodName(method) << "\n"
        << (*engine)->check_report()->ToString();
  }
}

TEST(CheckerTest, TimingOnlyEngineRunsClean) {
  // Timing-only mode skips functional MRAM traffic, but the plan,
  // transfer and model/sim audits still run.
  Fixture f = MakeFixture(false);
  auto engine = core::UpDlrmEngine::Create(
      nullptr, f.config, f.trace, f.system.get(),
      CheckedOptions(partition::Method::kCacheAware));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->RunAll(nullptr).ok());
  EXPECT_EQ((*engine)->check_violations(), 0u)
      << (*engine)->check_report()->ToString();
}

TEST(CheckerTest, HotPathLeversRunClean) {
  Fixture f = MakeFixture();
  core::EngineOptions options =
      CheckedOptions(partition::Method::kCacheAware);
  options.dedup = true;
  options.wram_cache_rows = 32;
  options.coalesce_transfers = true;
  options.replicate_hot_rows = 32;
  auto engine = core::UpDlrmEngine::Create(f.model.get(), f.config,
                                           f.trace, f.system.get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->RunAll(nullptr).ok());
  EXPECT_EQ((*engine)->check_violations(), 0u)
      << (*engine)->check_report()->ToString();
}

TEST(CheckerTest, CheckModeDoesNotChangeResults) {
  Fixture plain = MakeFixture();
  Fixture checked = MakeFixture();
  core::EngineOptions off = CheckedOptions(partition::Method::kCacheAware);
  off.check_mode = false;
  auto e1 = core::UpDlrmEngine::Create(plain.model.get(), plain.config,
                                       plain.trace, plain.system.get(), off);
  auto e2 = core::UpDlrmEngine::Create(
      checked.model.get(), checked.config, checked.trace,
      checked.system.get(), CheckedOptions(partition::Method::kCacheAware));
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_EQ((*e1)->check_report(), nullptr);
  auto b1 = (*e1)->RunBatch({0, 16}, nullptr);
  auto b2 = (*e2)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(b1.ok() && b2.ok());
  ASSERT_EQ(b1->pooled.size(), b2->pooled.size());
  for (std::size_t i = 0; i < b1->pooled.size(); ++i) {
    ASSERT_EQ(b1->pooled[i], b2->pooled[i]) << i;
  }
  EXPECT_DOUBLE_EQ(b1->stages.cpu_to_dpu, b2->stages.cpu_to_dpu);
  EXPECT_DOUBLE_EQ(b1->stages.dpu_lookup, b2->stages.dpu_lookup);
  EXPECT_DOUBLE_EQ(b1->stages.dpu_to_cpu, b2->stages.dpu_to_cpu);
}

TEST(CheckerTest, AttachAndDetachManageOnlyOwnObservers) {
  pim::DpuSystemConfig sys;
  sys.num_dpus = 2;
  sys.dpus_per_rank = 2;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = true;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());

  Checker checker(sys);
  checker.Attach(**system);
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_EQ((*system)->dpu(d).mram().observer(), checker.observer(d));
  }
  EXPECT_EQ(checker.observer(2), nullptr);

  // A foreign observer installed after ours must survive our Detach.
  class Nop final : public pim::MramObserver {
   public:
    void OnWrite(std::uint64_t, std::uint64_t) override {}
    void OnRead(std::uint64_t, std::uint64_t) override {}
  } foreign;
  (*system)->dpu(1).mram().set_observer(&foreign);
  checker.Detach(**system);
  EXPECT_EQ((*system)->dpu(0).mram().observer(), nullptr);
  EXPECT_EQ((*system)->dpu(1).mram().observer(), &foreign);
  (*system)->dpu(1).mram().set_observer(nullptr);
}

TEST(CheckerTest, ObserverFeedsShadowState) {
  pim::DpuSystemConfig sys;
  sys.num_dpus = 1;
  sys.dpus_per_rank = 1;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = true;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());
  Checker checker(sys);
  checker.Attach(**system);

  pim::Mram& mram = (*system)->dpu(0).mram();
  std::uint64_t payload = 0x1234;
  ASSERT_TRUE(
      mram.Write(0, {reinterpret_cast<const std::uint8_t*>(&payload),
                     sizeof(payload)})
          .ok());
  EXPECT_TRUE(checker.access().IsWritten(0, 0, 8));
  std::uint64_t readback = 0;
  ASSERT_TRUE(mram.Read(8, {reinterpret_cast<std::uint8_t*>(&readback),
                            sizeof(readback)})
                  .ok());
  EXPECT_EQ(checker.report().count(Rule::kUninitRead), 1u);
  checker.Detach(**system);
}

}  // namespace
}  // namespace updlrm::check
