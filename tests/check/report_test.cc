#include "check/report.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace updlrm::check {
namespace {

TEST(CheckReportTest, StartsClean) {
  CheckReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total(), 0u);
  EXPECT_EQ(report.count(Rule::kDmaAlignment), 0u);
  EXPECT_EQ(report.first_offender(Rule::kDmaAlignment), "");
  EXPECT_NE(report.ToString().find("all checks passed"),
            std::string::npos);
}

TEST(CheckReportTest, CountsPerRuleAndKeepsFirstOffender) {
  CheckReport report;
  report.AddViolation(Rule::kDmaSize, "first dma");
  report.AddViolation(Rule::kDmaSize, "second dma");
  report.AddViolation(Rule::kUninitRead, "cold read");
  EXPECT_EQ(report.count(Rule::kDmaSize), 2u);
  EXPECT_EQ(report.count(Rule::kUninitRead), 1u);
  EXPECT_EQ(report.total(), 3u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.first_offender(Rule::kDmaSize), "first dma");
}

TEST(CheckReportTest, EveryRuleHasAName) {
  for (std::size_t i = 0; i < kNumCheckRules; ++i) {
    EXPECT_NE(RuleName(static_cast<Rule>(i)), "unknown") << "rule " << i;
  }
}

TEST(CheckReportTest, ToStringAndJsonListNonzeroRules) {
  CheckReport report;
  report.AddViolation(Rule::kBankBounds, "offset 1 << 40");
  const std::string text = report.ToString();
  EXPECT_NE(text.find("bank-bounds"), std::string::npos);
  EXPECT_NE(text.find("offset 1 << 40"), std::string::npos);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bank-bounds\""), std::string::npos);
  // JSON context is quote-sanitized.
  report.AddViolation(Rule::kDmaSize, "a \"quoted\" context");
  EXPECT_EQ(report.ToJson().find("\"quoted\""), std::string::npos);
}

TEST(CheckReportTest, ResetClearsCountsAndOffenders) {
  CheckReport report;
  report.AddViolation(Rule::kRegionOverlap, "emt vs cache");
  report.Reset();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.first_offender(Rule::kRegionOverlap), "");
}

TEST(CheckReportTest, ConcurrentAddsSumExactly) {
  CheckReport report;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&report] {
      for (int i = 0; i < kPerThread; ++i) {
        report.AddViolation(Rule::kModelSimDivergence, "ctx");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(report.count(Rule::kModelSimDivergence),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace updlrm::check
