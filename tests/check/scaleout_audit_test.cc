// Injected-fault tests for the fleet scale-out auditors: each rule
// fires on a deliberately corrupted plan and stays silent on a clean
// one (the DESIGN.md §7 contract for new rules).
#include "check/scaleout_audit.h"

#include <gtest/gtest.h>

#include <vector>

#include "partition/tiering.h"
#include "pim/reduction.h"
#include "pim/topology.h"
#include "trace/profiler.h"

namespace updlrm::check {
namespace {

partition::TierShardingPlan CleanPlan(std::uint32_t num_shards,
                                      partition::TieringOptions* out) {
  trace::TableProfile profile;
  profile.freq = {9, 1, 8, 2, 7, 3, 6, 4};
  profile.by_freq = trace::ItemsByFrequency(profile.freq);
  partition::TieringOptions options;
  options.num_shards = num_shards;
  auto plan = partition::BuildTierShardingPlan(
      std::vector<trace::TableProfile>{profile}, options);
  UPDLRM_CHECK(plan.ok());
  if (out != nullptr) *out = options;
  return std::move(plan).value();
}

TEST(ScaleoutAuditTest, CleanShardPlanPasses) {
  partition::TieringOptions options;
  const auto plan = CleanPlan(3, &options);
  CheckReport report;
  AuditShardCoverage(0, plan.tables[0], 3, &report);
  AuditTierCapacity(0, plan.tables[0], options, &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(ScaleoutAuditTest, IllegalOwnerFiresShardCoverage) {
  auto plan = CleanPlan(3, nullptr);
  plan.tables[0].owner[2] = 7;  // nonexistent shard
  CheckReport report;
  AuditShardCoverage(0, plan.tables[0], 3, &report);
  EXPECT_EQ(report.count(Rule::kShardCoverage), 1u);
}

TEST(ScaleoutAuditTest, NonDenseLocalIdFiresShardCoverage) {
  auto plan = CleanPlan(2, nullptr);
  plan.tables[0].local[5] += 1;  // skip a local slot
  CheckReport report;
  AuditShardCoverage(0, plan.tables[0], 2, &report);
  EXPECT_EQ(report.count(Rule::kShardCoverage), 1u);
}

TEST(ScaleoutAuditTest, RollupMismatchFiresShardCoverage) {
  auto plan = CleanPlan(2, nullptr);
  plan.tables[0].shard_rows[0] += 1;  // rollup disagrees with owner map
  CheckReport report;
  AuditShardCoverage(0, plan.tables[0], 2, &report);
  EXPECT_EQ(report.count(Rule::kShardCoverage), 1u);
}

TEST(ScaleoutAuditTest, CapacityOverflowFiresTierCapacity) {
  partition::TieringOptions options;
  auto plan = CleanPlan(2, &options);
  options.pim_capacity_rows_per_shard = 2;  // plan holds 4 rows per shard
  CheckReport report;
  AuditTierCapacity(0, plan.tables[0], options, &report);
  EXPECT_EQ(report.count(Rule::kTierCapacity), 1u);
}

TEST(ScaleoutAuditTest, EpsilonOverrunFiresTierCapacity) {
  partition::TieringOptions options;
  auto plan = CleanPlan(1, &options);
  // Claim access mass in DRAM with a zero epsilon budget and no
  // capacity limit that could excuse it.
  plan.tables[0].dram_accesses = 5;
  CheckReport report;
  AuditTierCapacity(0, plan.tables[0], options, &report);
  EXPECT_EQ(report.count(Rule::kTierCapacity), 1u);
}

pim::ReductionPlan CleanReduction() {
  const pim::FleetTopology topo(pim::FleetTopologyConfig{}, 8);
  const std::vector<std::uint64_t> bytes(8, 8ull << 20);
  return pim::PlanReduction(topo, bytes, 1 << 12, 60.0e9);
}

TEST(ScaleoutAuditTest, CleanReductionPlanPasses) {
  CheckReport report;
  AuditReductionPlan(CleanReduction(), 8, &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(ScaleoutAuditTest, WrongTreeDepthFiresReductionShape) {
  auto plan = CleanReduction();
  plan.levels += 1;
  CheckReport report;
  AuditReductionPlan(plan, 8, &report);
  EXPECT_EQ(report.count(Rule::kReductionShape), 1u);
}

TEST(ScaleoutAuditTest, TooManyActiveRanksFiresReductionShape) {
  auto plan = CleanReduction();
  CheckReport report;
  AuditReductionPlan(plan, plan.active_ranks - 1, &report);
  EXPECT_EQ(report.count(Rule::kReductionShape), 1u);
}

TEST(ScaleoutAuditTest, NonStrictHierarchicalFiresReductionShape) {
  auto plan = CleanReduction();
  ASSERT_TRUE(plan.hierarchical);
  plan.flat_ns = plan.hier_ns;  // no longer a strict win
  CheckReport report;
  AuditReductionPlan(plan, 8, &report);
  EXPECT_EQ(report.count(Rule::kReductionShape), 1u);
}

TEST(ScaleoutAuditTest, WrongChosenTimeFiresReductionShape) {
  auto plan = CleanReduction();
  plan.time_ns += 1.0;
  CheckReport report;
  AuditReductionPlan(plan, 8, &report);
  EXPECT_EQ(report.count(Rule::kReductionShape), 1u);
}

}  // namespace
}  // namespace updlrm::check
