// Tracing is pure observation: enabling it must not change a single
// simulated number, and traced runs must stay bit-exact across thread
// counts (the tracer's per-thread buffers are the only tracing state
// touched from worker threads). Runs the engine and the serving loop
// with tracing off and on at --threads 1/2/4; carries the `tsan`
// ctest label so a -DUPDLRM_SANITIZE=thread build exercises the
// tracer's concurrent emission path under TSan.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "serve/server.h"
#include "telemetry/tracer.h"
#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::telemetry {
namespace {

const bool g_pool_sized = [] {
  ThreadPool::SetDefaultThreads(4);
  return true;
}();

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  std::unique_ptr<core::UpDlrmEngine> engine;
};

Fixture MakeFixture(std::uint32_t threads) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = 31;

  trace::DatasetSpec spec;
  spec.name = "tracedet";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = 31;
  trace::TraceGeneratorOptions options;
  options.num_samples = 128;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  core::EngineOptions engine_options;
  engine_options.method = partition::Method::kCacheAware;
  engine_options.nc = 4;
  engine_options.batch_size = 16;
  engine_options.reserved_io_bytes = 128 * kKiB;
  engine_options.grace.num_hot_items = 96;
  engine_options.num_threads = threads;
  auto engine = core::UpDlrmEngine::Create(nullptr, f.config, f.trace,
                                           f.system.get(), engine_options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  f.engine = std::move(engine).value();
  return f;
}

struct RunResult {
  core::InferenceReport report;
  serve::ServeResult serve;
  std::uint64_t traced_events = 0;
  std::uint64_t requests_traced = 0;
  std::uint64_t requests_sampled_out = 0;
};

RunResult RunAt(std::uint32_t threads, bool tracing,
          std::uint64_t sample_every = 1) {
  Tracer& tracer = Tracer::Get();
  if (tracing) {
    TracerOptions options;
    options.sample_every = sample_every;
    tracer.Enable(options);
  } else {
    tracer.Disable();
  }

  Fixture f = MakeFixture(threads);
  RunResult run;
  auto report = f.engine->RunAll(nullptr);
  UPDLRM_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  run.report = std::move(report).value();

  serve::ArrivalOptions arrivals;
  arrivals.process = serve::ArrivalProcess::kPoisson;
  arrivals.qps = 200'000.0;
  arrivals.seed = 5;
  auto requests = serve::GenerateRequests(f.trace, 0, arrivals);
  UPDLRM_CHECK(requests.ok());
  serve::ServeOptions serve_options;
  serve_options.batcher.max_batch_size = 16;
  serve_options.batcher.max_queue_delay_ns = 50'000.0;
  serve_options.batcher.queue_capacity = 64;
  auto served =
      serve::RunServeSimulation(*f.engine, *requests, serve_options);
  UPDLRM_CHECK_MSG(served.ok(), served.status().ToString().c_str());
  run.serve = std::move(served).value();

  run.traced_events = tracer.recorded_events();
  run.requests_traced = run.serve.requests_traced;
  run.requests_sampled_out = run.serve.requests_sampled_out;
  tracer.Disable();
  return run;
}

void ExpectSameSimulatedResults(const RunResult& a, const RunResult& b,
                                const char* what) {
  EXPECT_EQ(a.report.stages.cpu_to_dpu, b.report.stages.cpu_to_dpu)
      << what;
  EXPECT_EQ(a.report.stages.dpu_lookup, b.report.stages.dpu_lookup)
      << what;
  EXPECT_EQ(a.report.stages.dpu_to_cpu, b.report.stages.dpu_to_cpu)
      << what;
  EXPECT_EQ(a.report.stages.cpu_aggregate, b.report.stages.cpu_aggregate)
      << what;
  EXPECT_EQ(a.report.total, b.report.total) << what;
  EXPECT_EQ(a.report.num_batches, b.report.num_batches) << what;

  EXPECT_EQ(a.serve.completed, b.serve.completed) << what;
  EXPECT_EQ(a.serve.shed, b.serve.shed) << what;
  EXPECT_EQ(a.serve.makespan_ns, b.serve.makespan_ns) << what;
  EXPECT_EQ(a.serve.num_batches, b.serve.num_batches) << what;
  EXPECT_EQ(a.serve.max_queue_depth, b.serve.max_queue_depth) << what;
  ASSERT_EQ(a.serve.request_latency_ns.size(),
            b.serve.request_latency_ns.size())
      << what;
  for (std::size_t i = 0; i < a.serve.request_latency_ns.size(); ++i) {
    ASSERT_EQ(a.serve.request_latency_ns[i],
              b.serve.request_latency_ns[i])
        << what << " request " << i;
  }
}

TEST(TraceDeterminismTest, TracingOnEqualsTracingOff) {
  const RunResult off = RunAt(1, /*tracing=*/false);
  const RunResult on = RunAt(1, /*tracing=*/true);
  EXPECT_EQ(off.traced_events, 0u);
  EXPECT_GT(on.traced_events, 0u);
  ExpectSameSimulatedResults(off, on, "tracing on vs off");
}

TEST(TraceDeterminismTest, TracedRunsBitExactAcrossThreadCounts) {
  const RunResult serial = RunAt(1, /*tracing=*/true);
  EXPECT_GT(serial.traced_events, 0u);
  for (std::uint32_t threads : {2u, 4u}) {
    const RunResult run = RunAt(threads, /*tracing=*/true);
    ExpectSameSimulatedResults(serial, run, "threads");
    // The traced-request set is keyed on stable request ids, so even
    // the tracing accounting is thread-count invariant.
    EXPECT_EQ(run.requests_traced, serial.requests_traced) << threads;
    EXPECT_EQ(run.requests_sampled_out, serial.requests_sampled_out)
        << threads;
  }
}

TEST(TraceDeterminismTest, SamplingSkipsButCountsRequests) {
  const RunResult all = RunAt(1, /*tracing=*/true, /*sample_every=*/1);
  const RunResult sampled = RunAt(1, /*tracing=*/true, /*sample_every=*/4);
  ExpectSameSimulatedResults(all, sampled, "sampled vs full tracing");
  EXPECT_EQ(all.requests_sampled_out, 0u);
  EXPECT_GT(sampled.requests_sampled_out, 0u);
  EXPECT_LT(sampled.requests_traced, all.requests_traced);
  EXPECT_EQ(sampled.requests_traced + sampled.requests_sampled_out,
            all.requests_traced);
  EXPECT_LT(sampled.traced_events, all.traced_events);
}

}  // namespace
}  // namespace updlrm::telemetry
