// The span tracer's core contracts: emission ordering, ring-buffer
// overflow accounting, the disabled gate, clock-domain tagging and
// multi-threaded buffer isolation.
#include "telemetry/tracer.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace updlrm::telemetry {
namespace {

// The tracer is a process-wide singleton; every test starts its own
// trace (Enable drops prior events) and disables on exit.
class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Get().Disable(); }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();  // fresh trace (drops any prior test's events)
  tracer.Disable();
  EXPECT_FALSE(TraceEnabled());
  tracer.Begin("ignored");
  tracer.End();
  tracer.Complete(kPipelinePid, 0, Clock::kSim, "ignored", 10.0, 5.0);
  { TraceSpan span("ignored"); }
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
  EXPECT_EQ(tracer.recorded_events(), 0u);
}

TEST_F(TracerTest, EmissionOrderIsPreserved) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  ASSERT_TRUE(TraceEnabled());
  tracer.Begin("outer", "cat");
  tracer.Begin("inner", "cat");
  tracer.Instant("mark");
  tracer.End();
  tracer.End();
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(std::string(events[0].name), "outer");
  EXPECT_EQ(events[0].kind, EventKind::kBegin);
  EXPECT_EQ(std::string(events[1].name), "inner");
  EXPECT_EQ(std::string(events[2].name), "mark");
  EXPECT_EQ(events[2].kind, EventKind::kInstant);
  EXPECT_EQ(events[3].kind, EventKind::kEnd);
  EXPECT_EQ(events[4].kind, EventKind::kEnd);
  // Host-clock timestamps are monotonic in emission order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns) << i;
  }
}

TEST_F(TracerTest, OverflowDropsAndCountsNeverResizes) {
  Tracer& tracer = Tracer::Get();
  TracerOptions options;
  options.buffer_capacity = 8;
  tracer.Enable(options);
  for (int i = 0; i < 20; ++i) tracer.Instant("e");
  EXPECT_EQ(tracer.recorded_events(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12u);
  EXPECT_EQ(tracer.Snapshot().size(), 8u);
  // The first `capacity` events survive, in order.
  for (const TraceEvent& e : tracer.Snapshot()) {
    EXPECT_EQ(std::string(e.name), "e");
  }
}

TEST_F(TracerTest, EnableResetsPriorTrace) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  tracer.Instant("old");
  tracer.CountSampledOut(3);
  ASSERT_EQ(tracer.recorded_events(), 1u);
  tracer.Enable();  // fresh trace
  EXPECT_EQ(tracer.recorded_events(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_EQ(tracer.sampled_out_events(), 0u);
  tracer.Instant("new");
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "new");
}

TEST_F(TracerTest, ClockDomainsStaySeparated) {
  // Host-side emission is stamped kHost/kHostPid by the tracer; the
  // explicit-clock calls carry exactly the pid/clock/timestamps the
  // emitter computed — simulated timestamps are never mixed with the
  // wall clock.
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  tracer.Begin("host_work");
  tracer.End();
  tracer.Complete(kDpuPid, 7, Clock::kSim, "kernel", 1'000.0, 250.0,
                  "cycles", 88.0);
  tracer.Counter(kPipelinePid, Clock::kSim, "queue_depth", 500.0, 3.0);
  tracer.AsyncBegin(kRequestPid, 42, Clock::kSim, "request", "request",
                    100.0);
  tracer.AsyncEnd(kRequestPid, 42, Clock::kSim, "request", "request",
                  900.0);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].clock, Clock::kHost);
  EXPECT_EQ(events[0].pid, kHostPid);
  EXPECT_GE(events[0].ts_ns, 0.0);

  EXPECT_EQ(events[2].clock, Clock::kSim);
  EXPECT_EQ(events[2].pid, kDpuPid);
  EXPECT_EQ(events[2].tid, 7);
  EXPECT_DOUBLE_EQ(events[2].ts_ns, 1'000.0);
  EXPECT_DOUBLE_EQ(events[2].dur_ns, 250.0);
  EXPECT_EQ(std::string(events[2].arg_name[0]), "cycles");
  EXPECT_DOUBLE_EQ(events[2].arg_value[0], 88.0);

  EXPECT_EQ(events[3].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[3].value, 3.0);
  EXPECT_EQ(events[4].kind, EventKind::kAsyncBegin);
  EXPECT_EQ(events[4].async_id, 42u);
  EXPECT_EQ(events[5].kind, EventKind::kAsyncEnd);
}

TEST_F(TracerTest, SampledOutAccumulates) {
  Tracer& tracer = Tracer::Get();
  TracerOptions options;
  options.sample_every = 4;
  tracer.Enable(options);
  EXPECT_EQ(tracer.options().sample_every, 4u);
  tracer.CountSampledOut();
  tracer.CountSampledOut(5);
  EXPECT_EQ(tracer.sampled_out_events(), 6u);
}

TEST_F(TracerTest, TrackNamesAreStored) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  tracer.SetProcessName(kDpuPid, "DPU array");
  tracer.SetThreadName(kDpuPid, 3, "dpu 3");
  EXPECT_EQ(tracer.process_names().at(kDpuPid), "DPU array");
  EXPECT_EQ(tracer.thread_names().at({kDpuPid, 3}), "dpu 3");
}

TEST_F(TracerTest, ThreadsWriteDisjointBuffersInOrder) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&tracer, w] {
      for (int i = 0; i < kPerThread; ++i) {
        // tid-distinguishing payload via the sim-clock path: ts
        // encodes (worker, i) so per-thread order is checkable after
        // the merge.
        tracer.Complete(kPipelinePid, w, Clock::kSim, "work",
                        static_cast<double>(i), 1.0);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped_events(), 0u);
  // Within each worker's track, timestamps appear in emission order.
  std::vector<double> last(kThreads, -1.0);
  for (const TraceEvent& e : events) {
    const auto w = static_cast<std::size_t>(e.tid);
    ASSERT_LT(w, static_cast<std::size_t>(kThreads));
    EXPECT_GT(e.ts_ns, last[w]);
    last[w] = e.ts_ns;
  }
}

}  // namespace
}  // namespace updlrm::telemetry
