// Fleet-health monitor: every detector family (drift / SLO burn /
// stragglers), the simulated-time windowing machinery, the JSONL
// schema checker, and the registry export.
#include "telemetry/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/health.h"

namespace updlrm::telemetry {
namespace {

// Zipf-ish baseline over `n` items: freq[i] = total / (i + 1), with
// the tail after `nonzero` items all zero.
std::vector<std::uint64_t> MakeFreq(std::size_t n, std::size_t nonzero) {
  std::vector<std::uint64_t> freq(n, 0);
  for (std::size_t i = 0; i < nonzero; ++i) {
    freq[i] = 1000 / (i + 1) + 1;
  }
  return freq;
}

std::vector<std::uint32_t> MakeByFreq(
    const std::vector<std::uint64_t>& freq) {
  // The synthetic freq above is already descending.
  std::vector<std::uint32_t> by_freq(freq.size());
  for (std::size_t i = 0; i < freq.size(); ++i) {
    by_freq[i] = static_cast<std::uint32_t>(i);
  }
  return by_freq;
}

// A window that resamples the baseline distribution exactly.
std::map<std::uint32_t, std::uint64_t> BaselineWindow(
    const std::vector<std::uint64_t>& freq) {
  std::map<std::uint32_t, std::uint64_t> counts;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (freq[i] > 0) counts[static_cast<std::uint32_t>(i)] = freq[i];
  }
  return counts;
}

// A window whose mass sits entirely on baseline-unseen items.
std::map<std::uint32_t, std::uint64_t> ShiftedWindow(std::size_t n,
                                                     std::size_t nonzero) {
  std::map<std::uint32_t, std::uint64_t> counts;
  for (std::size_t i = nonzero; i < n; ++i) {
    counts[static_cast<std::uint32_t>(i)] = 10;
  }
  return counts;
}

// --- drift ------------------------------------------------------------

TEST(DriftBaselineTest, MassSumsToOneAndTopKIsSorted) {
  const auto freq = MakeFreq(64, 48);
  const DriftOptions options;
  const DriftBaseline b =
      BuildDriftBaseline(freq, MakeByFreq(freq), options);
  double mass = 0.0;
  for (const double m : b.bucket_mass) mass += m;
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_EQ(b.bucket_mass.back(), 0.0);  // unseen bucket: no baseline mass
  EXPECT_EQ(b.top_items.size(), std::min<std::size_t>(options.top_k, 48));
  EXPECT_TRUE(std::is_sorted(b.top_items.begin(), b.top_items.end()));
  EXPECT_EQ(b.item_bucket.size(), freq.size());
  // Zero-frequency items map to the trailing unseen bucket.
  EXPECT_EQ(b.item_bucket[63],
            static_cast<std::int32_t>(b.bucket_mass.size() - 1));
}

TEST(DriftDetectorTest, StationaryWindowIsGood) {
  const auto freq = MakeFreq(64, 48);
  DriftDetector detector(
      BuildDriftBaseline(freq, MakeByFreq(freq), DriftOptions{}),
      DriftOptions{});
  const auto v = detector.JudgeWindow(BaselineWindow(freq));
  EXPECT_TRUE(v.judged);
  EXPECT_NEAR(v.tv_distance, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(v.topk_jaccard, 1.0);
  EXPECT_FALSE(v.alerting);
  EXPECT_EQ(detector.bad_windows(), 0u);
}

TEST(DriftDetectorTest, HysteresisTripsAndClears) {
  const auto freq = MakeFreq(64, 32);
  const DriftOptions options;  // trip 2, clear 2
  DriftDetector detector(
      BuildDriftBaseline(freq, MakeByFreq(freq), options), options);
  // One bad window: judged bad, not yet alerting.
  auto v = detector.JudgeWindow(ShiftedWindow(64, 32));
  EXPECT_TRUE(v.judged);
  EXPECT_GT(v.tv_distance, options.tv_threshold);
  EXPECT_LT(v.topk_jaccard, options.jaccard_min);
  EXPECT_FALSE(v.alerting);
  // Second consecutive bad window trips the alert.
  v = detector.JudgeWindow(ShiftedWindow(64, 32));
  EXPECT_TRUE(v.alerting);
  EXPECT_TRUE(detector.alerting());
  EXPECT_EQ(detector.bad_windows(), 2u);
  // One good window holds the alert, the second clears it.
  v = detector.JudgeWindow(BaselineWindow(freq));
  EXPECT_TRUE(v.alerting);
  v = detector.JudgeWindow(BaselineWindow(freq));
  EXPECT_FALSE(v.alerting);
  EXPECT_FALSE(detector.alerting());
}

TEST(DriftDetectorTest, DeepTailIdentityChurnIsNotDrift) {
  // A finite history cannot estimate per-item tail mass, so accesses
  // moving between deep-tail identities (ranks past 10^max_rank_decades
  // and baseline-unseen items) must cancel inside the coalesced tail
  // bucket instead of registering as drift. Found live: without the
  // coalescing, the stationary GoodReads replay in abl_drift carried a
  // ~0.37 TV floor from tail churn alone.
  const std::size_t n = 20000;
  const std::size_t nonzero = 15000;
  const auto freq = MakeFreq(n, nonzero);
  // Head stays exact; every deep-tail access (ranks >= 1000) moves to
  // a baseline-unseen identity, keeping the window's head/tail mass
  // split identical to the baseline's.
  std::map<std::uint32_t, std::uint64_t> counts;
  for (std::size_t i = 0; i < 1000; ++i) {
    counts[static_cast<std::uint32_t>(i)] = freq[i];
  }
  for (std::size_t i = 1000; i < nonzero; ++i) {
    counts[static_cast<std::uint32_t>(nonzero + (i - 1000) % (n - nonzero))]
        += freq[i];
  }
  const DriftOptions options;  // max_rank_decades = 3
  DriftDetector coalesced(
      BuildDriftBaseline(freq, MakeByFreq(freq), options), options);
  const auto v = coalesced.JudgeWindow(counts);
  EXPECT_TRUE(v.judged);
  EXPECT_NEAR(v.tv_distance, 0.0, 1e-9);
  EXPECT_FALSE(v.bad);
  // With the head widened past the whole item range the same churn
  // shows up as TV — the coalescing is what cancels it.
  DriftOptions wide = options;
  wide.max_rank_decades = 9;
  DriftDetector uncoalesced(
      BuildDriftBaseline(freq, MakeByFreq(freq), wide), wide);
  EXPECT_GT(uncoalesced.JudgeWindow(counts).tv_distance, 0.01);
}

TEST(DriftDetectorTest, JaccardAbstainsOnFlatBaselines) {
  // On a near-flat table "the top k" is a random draw from a huge
  // near-tied set, so top-k Jaccard is pure noise and must not vote;
  // TV still judges. Found live: the near-uniform fleet tables in
  // fig12_scaleout (top-32 mass ~0.6%) alerted on every stationary
  // window through the Jaccard criterion.
  const std::size_t n = 4000;
  std::vector<std::uint64_t> flat(n, 5);
  const DriftOptions options;
  const DriftBaseline baseline =
      BuildDriftBaseline(flat, MakeByFreq(flat), options);
  EXPECT_LT(baseline.top_mass, options.min_topk_mass);
  DriftDetector detector(baseline, options);
  // Uniform mass over items 32..3999: the window's empirical top-32 is
  // disjoint from the baseline's, but the distribution barely moved.
  std::map<std::uint32_t, std::uint64_t> counts;
  for (std::size_t i = 32; i < n; ++i) {
    counts[static_cast<std::uint32_t>(i)] = 5;
  }
  const auto v = detector.JudgeWindow(counts);
  EXPECT_TRUE(v.judged);
  EXPECT_LT(v.topk_jaccard, options.jaccard_min);  // noisy, as expected
  EXPECT_LT(v.tv_distance, options.tv_threshold);
  EXPECT_FALSE(v.bad) << "abstaining Jaccard must not vote a flat "
                         "table bad";
  // A concentrated baseline with the same top-k disagreement does vote.
  const auto skew = MakeFreq(64, 48);
  const DriftBaseline hot =
      BuildDriftBaseline(skew, MakeByFreq(skew), options);
  EXPECT_GE(hot.top_mass, options.min_topk_mass);
  DriftDetector hot_detector(hot, options);
  EXPECT_TRUE(hot_detector.JudgeWindow(ShiftedWindow(64, 48)).bad);
}

TEST(DriftDetectorTest, TinyWindowIsNotJudged) {
  const auto freq = MakeFreq(64, 32);
  const DriftOptions options;  // min_accesses = 32
  DriftDetector detector(
      BuildDriftBaseline(freq, MakeByFreq(freq), options), options);
  std::map<std::uint32_t, std::uint64_t> tiny = {{60, 3}, {61, 4}};
  const auto v = detector.JudgeWindow(tiny);
  EXPECT_FALSE(v.judged);
  EXPECT_EQ(v.accesses, 7u);
  EXPECT_FALSE(v.alerting);
  EXPECT_EQ(detector.bad_windows(), 0u);  // hysteresis untouched
}

// --- SLO burn ---------------------------------------------------------

TEST(BurnRateMonitorTest, QuietThenBurstThenRecovery) {
  BurnRateMonitor burn{SloBurnOptions{}};
  for (int i = 0; i < 12; ++i) {
    const auto v = burn.PushWindow(100, 0);
    EXPECT_DOUBLE_EQ(v.fast_burn, 0.0);
    EXPECT_DOUBLE_EQ(v.slow_burn, 0.0);
    EXPECT_FALSE(v.alerting);
  }
  // A fully-failed window: both horizons blow their thresholds.
  const auto bad = burn.PushWindow(100, 100);
  EXPECT_GT(bad.fast_burn, SloBurnOptions{}.fast_burn_threshold);
  EXPECT_GT(bad.slow_burn, SloBurnOptions{}.slow_burn_threshold);
  EXPECT_TRUE(bad.alerting);
  EXPECT_TRUE(burn.alerting());
  // Two good windows roll the burst out of the fast horizon; the slow
  // horizon still remembers, so the AND-gate clears the alert.
  burn.PushWindow(100, 0);
  const auto recovered = burn.PushWindow(100, 0);
  EXPECT_DOUBLE_EQ(recovered.fast_burn, 0.0);
  EXPECT_GT(recovered.slow_burn, 0.0);
  EXPECT_FALSE(recovered.alerting);
}

// --- stragglers -------------------------------------------------------

TEST(StragglerScorerTest, BalancedFleetHasNoStragglers) {
  StragglerScorer scorer(16, HealthOptions{});
  std::vector<std::uint64_t> deltas(16, 100);
  const auto v = scorer.ScoreWindow(deltas);
  EXPECT_TRUE(v.judged);
  EXPECT_EQ(v.active_units, 16u);
  EXPECT_DOUBLE_EQ(v.mean_delta, 100.0);
  EXPECT_DOUBLE_EQ(v.stddev_delta, 0.0);
  EXPECT_EQ(v.stragglers, 0u);
  EXPECT_FALSE(v.alerting);
}

TEST(StragglerScorerTest, PersistentSlowUnitTripsAfterSmoothing) {
  HealthOptions options;
  options.units_per_rank = 4;
  StragglerScorer scorer(16, options);
  std::vector<std::uint64_t> deltas(16, 100);
  deltas[13] = 1000;  // rank 3's second unit is persistently slow
  StragglerScorer::WindowVerdict v;
  for (int w = 0; w < 8; ++w) v = scorer.ScoreWindow(deltas);
  EXPECT_TRUE(v.judged);
  EXPECT_EQ(v.worst_unit, 13u);
  EXPECT_GE(v.max_z, options.z_threshold);
  EXPECT_EQ(v.stragglers, 1u);
  EXPECT_TRUE(v.alerting);
  EXPECT_EQ(v.rank.worst, 3u);
  // A single window's wobble must NOT trip: the EWMA needs persistence.
  StragglerScorer fresh(16, options);
  const auto first = fresh.ScoreWindow(deltas);
  EXPECT_LT(first.max_z, options.z_threshold);
  EXPECT_FALSE(first.alerting);
}

TEST(StragglerScorerTest, IdleWindowIsNotJudged) {
  StragglerScorer scorer(16, HealthOptions{});  // min_active_units = 2
  std::vector<std::uint64_t> deltas(16, 0);
  deltas[5] = 7;
  const auto v = scorer.ScoreWindow(deltas);
  EXPECT_FALSE(v.judged);
  EXPECT_EQ(v.active_units, 1u);
}

// --- monitor windowing ------------------------------------------------

MonitorOptions SmallWindows() {
  MonitorOptions options;
  options.window_ns = 100.0;
  options.drift.min_accesses = 1;
  options.slo.slo_ns = 100.0;
  return options;
}

TEST(FleetMonitorTest, WindowCloseIsKeyedToSimulatedTime) {
  FleetMonitor monitor(SmallWindows());
  const auto freq = MakeFreq(16, 8);
  monitor.AddTableBaseline(
      0, BuildDriftBaseline(freq, MakeByFreq(freq), SmallWindows().drift));
  const std::uint32_t items[] = {0, 1};
  monitor.OnAccess(0, 10.0, items);    // window 0
  monitor.OnAccess(0, 99.0, items);    // still window 0
  monitor.OnAccess(0, 250.0, items);   // window 2: closes window 0
  monitor.Finalize();                  // flushes window 2
  ASSERT_EQ(monitor.windows().size(), 2u);
  EXPECT_EQ(monitor.windows()[0].index, 0u);
  EXPECT_EQ(monitor.windows()[1].index, 2u);
  EXPECT_DOUBLE_EQ(monitor.windows()[0].start_ns, 0.0);
  EXPECT_DOUBLE_EQ(monitor.windows()[0].end_ns, 100.0);
  ASSERT_EQ(monitor.windows()[0].drift.size(), 1u);
  EXPECT_EQ(monitor.windows()[0].drift[0].verdict.accesses, 4u);
  EXPECT_EQ(monitor.windows()[1].drift[0].verdict.accesses, 2u);
  EXPECT_EQ(monitor.summary().windows, 2u);
}

TEST(FleetMonitorTest, AccessForUnmonitoredTableIsIgnored) {
  FleetMonitor monitor(SmallWindows());
  const std::uint32_t items[] = {0};
  monitor.OnAccess(7, 10.0, items);  // no baseline for table 7
  monitor.Finalize();
  EXPECT_TRUE(monitor.windows().empty());
}

TEST(FleetMonitorTest, SloStreamMergesAndIdleWindowsAgeTheBurn) {
  FleetMonitor monitor(SmallWindows());
  monitor.OnRequest(50.0, 10.0);    // window 0, good
  monitor.OnRequest(60.0, 500.0);   // window 0, over SLO
  monitor.OnRequest(250.0, 10.0);   // window 2 (window 1 idle)
  monitor.Finalize();
  ASSERT_EQ(monitor.windows().size(), 2u);
  EXPECT_TRUE(monitor.windows()[0].has_slo);
  EXPECT_EQ(monitor.windows()[0].slo.completed, 2u);
  EXPECT_EQ(monitor.windows()[0].slo.over_slo, 1u);
  EXPECT_EQ(monitor.windows()[1].index, 2u);
  EXPECT_EQ(monitor.windows()[1].slo.over_slo, 0u);
  // Summary latency = merge of the per-window histograms.
  EXPECT_EQ(monitor.summary().latency.count(), 3u);
  EXPECT_DOUBLE_EQ(monitor.summary().latency.max(), 500.0);
}

TEST(FleetMonitorTest, UnitSamplesDifferenceIntoWindowDeltas) {
  FleetMonitor monitor(SmallWindows());
  std::vector<std::uint64_t> work(4, 0);
  monitor.OnUnitSample(0.0, work);  // baseline sample, window 0 opens
  work = {10, 10, 10, 10};
  monitor.OnUnitSample(50.0, work);
  work = {30, 30, 30, 90};
  monitor.OnUnitSample(150.0, work);  // closes window 0: deltas {10,..}
  monitor.Finalize();                 // closes window 1: {20,20,20,80}
  ASSERT_EQ(monitor.windows().size(), 2u);
  EXPECT_TRUE(monitor.windows()[0].has_health);
  EXPECT_DOUBLE_EQ(monitor.windows()[0].health.mean_delta, 10.0);
  EXPECT_DOUBLE_EQ(monitor.windows()[1].health.mean_delta, 35.0);
  EXPECT_EQ(monitor.windows()[1].health.worst_unit, 3u);
}

TEST(FleetMonitorTest, IdenticalFeedsProduceIdenticalJsonl) {
  auto run = [] {
    FleetMonitor monitor(SmallWindows());
    const auto freq = MakeFreq(16, 8);
    monitor.AddTableBaseline(
        0,
        BuildDriftBaseline(freq, MakeByFreq(freq), SmallWindows().drift));
    const std::uint32_t items[] = {0, 1, 2};
    for (int i = 0; i < 10; ++i) {
      const Nanos t = 40.0 * i;
      monitor.OnAccess(0, t, items);
      monitor.OnRequest(t + 5.0, 50.0 + i);
    }
    monitor.Finalize();
    return monitor.ToJsonl();
  };
  EXPECT_EQ(run(), run());
}

// --- JSONL schema -----------------------------------------------------

TEST(FleetMonitorTest, JsonlRoundTripsThroughTheValidator) {
  FleetMonitor monitor(SmallWindows());
  const auto freq = MakeFreq(16, 8);
  monitor.AddTableBaseline(
      0, BuildDriftBaseline(freq, MakeByFreq(freq), SmallWindows().drift));
  const std::uint32_t items[] = {0, 1, 2};
  for (int i = 0; i < 12; ++i) {
    monitor.OnAccess(0, 30.0 * i, items);
    monitor.OnRequest(30.0 * i + 1.0, 10.0);
  }
  monitor.Finalize();
  const std::string jsonl = monitor.ToJsonl();
  EXPECT_TRUE(ValidateHealthJsonl(jsonl, 2).ok());
  // More windows than the stream holds -> FailedPrecondition.
  EXPECT_FALSE(ValidateHealthJsonl(jsonl, 100).ok());
  // Decapitated stream: no schema header.
  const std::string headless = jsonl.substr(jsonl.find('\n') + 1);
  EXPECT_FALSE(ValidateHealthJsonl(headless, 1).ok());
  // Truncated stream: summary record lost.
  std::string no_summary = jsonl;
  no_summary.resize(no_summary.rfind("{\"summary\""));
  EXPECT_FALSE(ValidateHealthJsonl(no_summary, 1).ok());
}

TEST(ValidateHealthJsonlTest, RejectsOutOfOrderWindows) {
  const std::string bad =
      "{\"schema\":\"updlrm.health.v1\",\"window_ns\":100}\n"
      "{\"window\":2,\"start_ns\":200,\"end_ns\":300,\"drift\":[]}\n"
      "{\"window\":1,\"start_ns\":100,\"end_ns\":200,\"drift\":[]}\n"
      "{\"summary\":{}}\n";
  const Status status = ValidateHealthJsonl(bad, 1);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("strictly increasing"),
            std::string::npos);
}

// --- export / gating --------------------------------------------------

TEST(FleetMonitorTest, ExportsSummaryToRegistry) {
  FleetMonitor monitor(SmallWindows());
  monitor.OnRequest(10.0, 5.0);
  monitor.Finalize();
  MetricsRegistry registry;
  monitor.ExportTo(registry, "health");
  EXPECT_TRUE(registry.Has("health.windows"));
  EXPECT_TRUE(registry.Has("health.slo_alert_windows"));
  EXPECT_TRUE(registry.Has("health.max_unit_z"));
  EXPECT_DOUBLE_EQ(registry.CounterValue("health.windows"), 1.0);
}

TEST(MonitorEnabledTest, NullMonitorIsDisabled) {
  EXPECT_FALSE(MonitorEnabled(nullptr));
#ifndef UPDLRM_TELEMETRY_DISABLED
  FleetMonitor monitor{MonitorOptions{}};
  EXPECT_TRUE(MonitorEnabled(&monitor));
#endif
}

}  // namespace
}  // namespace updlrm::telemetry
