// The unified metrics registry: counter/gauge/histogram semantics,
// percentile interpolation bounds, deterministic JSON snapshots and
// the one-kind-per-name contract.
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace updlrm::telemetry {
namespace {

TEST(ValueHistogramTest, TracksCountSumMinMax) {
  ValueHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.Observe(100.0);
  h.Observe(5.0);
  h.Observe(1e9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0 + 5.0 + 1e9);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_DOUBLE_EQ(h.Mean(), h.sum() / 3.0);
}

TEST(ValueHistogramTest, PercentilesClampToExactExtremes) {
  ValueHistogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i) * 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 10.0);     // exact min
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1000.0);  // exact max
  // Log-spaced buckets bound the interior error to ~26% relative.
  const double p50 = h.Percentile(50.0);
  EXPECT_GT(p50, 500.0 * 0.7);
  EXPECT_LT(p50, 500.0 * 1.3);
  const double p99 = h.Percentile(99.0);
  EXPECT_GT(p99, 990.0 * 0.7);
  EXPECT_LE(p99, 1000.0);
}

TEST(ValueHistogramTest, BucketEdgesLandWhereTheGridSaysTheyDo) {
  // Exact edge values: 0 is the underflow bucket, kMinValue opens the
  // first real bucket, each decade boundary 10^d opens bucket
  // 1 + d * kBucketsPerDecade, and the range's top (1e12) spills into
  // the overflow bucket — [1, 1e12) with 12 decades has no 121st
  // in-range bucket.
  ValueHistogram h;
  h.Observe(0.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  h.Observe(ValueHistogram::kMinValue);
  EXPECT_EQ(h.buckets()[1], 1u);
  for (int d = 1; d < ValueHistogram::kDecades; ++d) {
    ValueHistogram decade;
    decade.Observe(std::pow(10.0, d));
    EXPECT_EQ(decade.buckets()[1 + d * ValueHistogram::kBucketsPerDecade],
              1u)
        << "decade boundary 1e" << d;
  }
  ValueHistogram top;
  top.Observe(1e12);
  EXPECT_EQ(top.buckets()[ValueHistogram::kNumBuckets - 1], 1u);
  // Just inside the range stays in the last real bucket.
  ValueHistogram inside;
  inside.Observe(1e12 * (1.0 - 1e-9));
  EXPECT_EQ(inside.buckets()[ValueHistogram::kNumBuckets - 2], 1u);
}

TEST(ValueHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  // Bucket interpolation can never widen a single observation: the
  // min/max clamp pins every percentile to the sample itself.
  for (const double v : {0.0, 1.0, 3.7, 1e6, 5e13}) {
    ValueHistogram h;
    h.Observe(v);
    for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(h.Percentile(p), v) << "p" << p << " of " << v;
    }
  }
}

TEST(ValueHistogramTest, PercentileIsMonotoneInP) {
  ValueHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Observe(static_cast<double>((i * 7919) % 100000));
  }
  double prev = h.Percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), h.max());  // exact p100 pin
}

TEST(ValueHistogramTest, MergeMatchesObservingTheUnion) {
  ValueHistogram a;
  ValueHistogram b;
  ValueHistogram all;
  for (int i = 1; i <= 50; ++i) {
    const double v = static_cast<double>(i * i);
    a.Observe(v);
    all.Observe(v);
  }
  for (int i = 1; i <= 30; ++i) {
    const double v = 1e7 / static_cast<double>(i);
    b.Observe(v);
    all.Observe(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (int i = 0; i < ValueHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(a.buckets()[i], all.buckets()[i]) << "bucket " << i;
  }
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), all.Percentile(p)) << "p" << p;
  }
}

TEST(ValueHistogramTest, MergeWithEmptyIsIdentityBothWays) {
  ValueHistogram filled;
  filled.Observe(5.0);
  filled.Observe(500.0);
  const ValueHistogram empty;
  // Merging an empty histogram changes nothing...
  ValueHistogram x = filled;
  x.Merge(empty);
  EXPECT_EQ(x.count(), 2u);
  EXPECT_DOUBLE_EQ(x.min(), 5.0);
  EXPECT_DOUBLE_EQ(x.max(), 500.0);
  EXPECT_DOUBLE_EQ(x.sum(), filled.sum());
  // ... and merging into an empty one copies (min/max included, even
  // though an empty histogram reports min()/max() as 0).
  ValueHistogram y;
  y.Merge(filled);
  EXPECT_EQ(y.count(), 2u);
  EXPECT_DOUBLE_EQ(y.min(), 5.0);
  EXPECT_DOUBLE_EQ(y.max(), 500.0);
  EXPECT_DOUBLE_EQ(y.Percentile(100.0), 500.0);
  // Empty-with-empty stays empty.
  ValueHistogram z;
  z.Merge(empty);
  EXPECT_EQ(z.count(), 0u);
  EXPECT_DOUBLE_EQ(z.Percentile(50.0), 0.0);
}

TEST(ValueHistogramTest, HandlesOutOfRangeInputs) {
  ValueHistogram h;
  h.Observe(-5.0);   // clamped to 0 (underflow bucket)
  h.Observe(0.25);   // below kMinValue -> underflow bucket
  h.Observe(5e13);   // beyond the top decade -> overflow bucket
  h.Observe(std::nan(""));  // ignored
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 5e13);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 5e13);
}

TEST(MetricsRegistryTest, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry registry;
  registry.Increment("pim.lookups", 10.0);
  registry.Increment("pim.lookups", 5.0);
  registry.Increment("pim.batches");
  registry.SetGauge("serve.qps", 100.0);
  registry.SetGauge("serve.qps", 250.0);
  EXPECT_DOUBLE_EQ(registry.CounterValue("pim.lookups"), 15.0);
  EXPECT_DOUBLE_EQ(registry.CounterValue("pim.batches"), 1.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("serve.qps"), 250.0);
  EXPECT_TRUE(registry.Has("pim.lookups"));
  EXPECT_FALSE(registry.Has("missing"));
  EXPECT_DOUBLE_EQ(registry.CounterValue("missing"), 0.0);
}

TEST(MetricsRegistryTest, HistogramsObserve) {
  MetricsRegistry registry;
  registry.Observe("serve.latency_ns", 1'000.0);
  registry.Observe("serve.latency_ns", 2'000.0);
  const ValueHistogram h = registry.HistogramValue("serve.latency_ns");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1'000.0);
  EXPECT_DOUBLE_EQ(h.max(), 2'000.0);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndOrdered) {
  auto fill = [](MetricsRegistry& r) {
    // Insertion order differs from key order on purpose: the snapshot
    // must sort by name regardless.
    r.SetGauge("z.gauge", 1.5);
    r.Increment("b.counter", 2.0);
    r.Increment("a.counter", 1.0);
    r.Observe("m.hist", 100.0);
  };
  MetricsRegistry first;
  MetricsRegistry second;
  fill(first);
  fill(second);
  const std::string json = first.ToJson();
  EXPECT_EQ(json, second.ToJson());
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.Increment("c", 1.0);
  registry.SetGauge("g", 1.0);
  registry.Observe("h", 1.0);
  registry.Reset();
  EXPECT_FALSE(registry.Has("c"));
  EXPECT_FALSE(registry.Has("g"));
  EXPECT_FALSE(registry.Has("h"));
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryDeathTest, NameKindReuseAborts) {
  MetricsRegistry registry;
  registry.Increment("metric.x", 1.0);
  EXPECT_DEATH(registry.SetGauge("metric.x", 2.0), "metric.x");
}

TEST(MetricsRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace updlrm::telemetry
