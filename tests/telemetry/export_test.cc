// The Chrome trace-event exporter and its schema checker: event
// mapping, microsecond conversion, clock-domain separation in the
// output, and rejection of malformed or empty traces.
#include "telemetry/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "telemetry/json.h"
#include "telemetry/tracer.h"

namespace updlrm::telemetry {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Get().Disable(); }

  /// Records a small representative trace spanning both clocks and
  /// every event kind the instrumentation emits.
  static void RecordSampleTrace() {
    Tracer& tracer = Tracer::Get();
    tracer.Enable();
    tracer.SetProcessName(kDpuPid, "DPU array (simulated time)");
    tracer.SetThreadName(kDpuPid, 3, "dpu 3");
    tracer.Begin("host_span", "engine");
    tracer.Instant("host_mark");
    tracer.End();
    tracer.Complete(kDpuPid, 3, Clock::kSim, "kernel", 2'000.0, 500.0,
                    "cycles", 175.0);
    tracer.Counter(kPipelinePid, Clock::kSim, "queue_depth", 1'000.0,
                   4.0);
    tracer.AsyncBegin(kRequestPid, 9, Clock::kSim, "request", "request",
                      100.0);
    tracer.AsyncEnd(kRequestPid, 9, Clock::kSim, "request", "request",
                    3'100.0);
  }
};

TEST_F(ExportTest, RoundTripsThroughTheSchemaChecker) {
  RecordSampleTrace();
  const std::string json = ToChromeTraceJson(Tracer::Get());
  EXPECT_TRUE(ValidateChromeTraceJson(json).ok())
      << ValidateChromeTraceJson(json).ToString();
  EXPECT_TRUE(ValidateChromeTraceJson(json, /*min_events=*/7).ok());
  // 7 non-metadata events were recorded; demanding more must fail.
  EXPECT_FALSE(ValidateChromeTraceJson(json, /*min_events=*/8).ok());
}

TEST_F(ExportTest, MapsEventKindsAndConvertsToMicroseconds) {
  RecordSampleTrace();
  const std::string json = ToChromeTraceJson(Tracer::Get());
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  const JsonValue* kernel = nullptr;
  const JsonValue* counter = nullptr;
  const JsonValue* async_begin = nullptr;
  bool saw_host_begin = false;
  for (const JsonValue& e : events->AsArray()) {
    const std::string& ph = e.Find("ph")->AsString();
    const JsonValue* name = e.Find("name");
    if (ph == "X") kernel = &e;
    if (ph == "C") counter = &e;
    if (ph == "b") async_begin = &e;
    if (ph == "B" && name->AsString() == "host_span") {
      saw_host_begin = true;
      EXPECT_EQ(static_cast<int>(e.Find("pid")->AsNumber()), kHostPid);
      EXPECT_EQ(e.Find("cat")->AsString(), "engine");
    }
  }
  EXPECT_TRUE(saw_host_begin);

  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->Find("name")->AsString(), "kernel");
  EXPECT_EQ(static_cast<int>(kernel->Find("pid")->AsNumber()), kDpuPid);
  EXPECT_EQ(static_cast<int>(kernel->Find("tid")->AsNumber()), 3);
  // ts/dur are exported in microseconds: 2000 ns -> 2 us, 500 -> 0.5.
  EXPECT_DOUBLE_EQ(kernel->Find("ts")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(kernel->Find("dur")->AsNumber(), 0.5);
  const JsonValue* cycles = kernel->Find("args")->Find("cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_DOUBLE_EQ(cycles->AsNumber(), 175.0);

  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->Find("args")->Find("value")->AsNumber(), 4.0);

  ASSERT_NE(async_begin, nullptr);
  EXPECT_EQ(async_begin->Find("cat")->AsString(), "request");
  ASSERT_NE(async_begin->Find("id"), nullptr);
}

TEST_F(ExportTest, NamesTracksAndSeparatesClockDomains) {
  RecordSampleTrace();
  const std::string json = ToChromeTraceJson(Tracer::Get());
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  bool named_dpu_process = false;
  bool named_dpu_track = false;
  for (const JsonValue& e : parsed->Find("traceEvents")->AsArray()) {
    if (e.Find("ph")->AsString() != "M") {
      // Host-clock events stay in kHostPid; simulated events never
      // appear there.
      const int pid = static_cast<int>(e.Find("pid")->AsNumber());
      const std::string& name = e.Find("name") != nullptr
                                    ? e.Find("name")->AsString()
                                    : std::string();
      if (pid == kHostPid) {
        EXPECT_TRUE(name == "host_span" || name == "host_mark" ||
                    name.empty())
            << name;
      } else {
        EXPECT_TRUE(name != "host_span" && name != "host_mark") << name;
      }
      continue;
    }
    if (e.Find("name")->AsString() == "process_name" &&
        static_cast<int>(e.Find("pid")->AsNumber()) == kDpuPid) {
      named_dpu_process = true;
    }
    if (e.Find("name")->AsString() == "thread_name" &&
        static_cast<int>(e.Find("tid")->AsNumber()) == 3) {
      named_dpu_track = true;
    }
  }
  EXPECT_TRUE(named_dpu_process);
  EXPECT_TRUE(named_dpu_track);
  const JsonValue* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other->Find("clockDomains"), nullptr);
}

TEST_F(ExportTest, RejectsMalformedJson) {
  EXPECT_FALSE(ValidateChromeTraceJson("not json at all").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("{\"traceEvents\": 17}").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("{}").ok());
  EXPECT_FALSE(ValidateChromeTraceJson("{\"traceEvents\": [").ok());
}

TEST_F(ExportTest, RejectsSchemaViolations) {
  auto wrap = [](const std::string& event) {
    return "{\"traceEvents\": [" + event + "]}";
  };
  // Well-formed JSON, broken trace-event schema:
  EXPECT_FALSE(ValidateChromeTraceJson(wrap("{}")).ok());  // no ph
  EXPECT_FALSE(ValidateChromeTraceJson(
                   wrap("{\"ph\":\"Z\",\"pid\":1,\"tid\":0,\"ts\":0,"
                        "\"name\":\"x\"}"))
                   .ok());  // unknown phase
  EXPECT_FALSE(ValidateChromeTraceJson(
                   wrap("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,"
                        "\"name\":\"x\"}"))
                   .ok());  // X without dur
  EXPECT_FALSE(ValidateChromeTraceJson(
                   wrap("{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":-5,"
                        "\"name\":\"x\"}"))
                   .ok());  // negative ts
  EXPECT_FALSE(ValidateChromeTraceJson(
                   wrap("{\"ph\":\"b\",\"pid\":1,\"tid\":0,\"ts\":0,"
                        "\"name\":\"x\"}"))
                   .ok());  // async without id/cat
  EXPECT_FALSE(ValidateChromeTraceJson(
                   wrap("{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0,"
                        "\"name\":\"\"}"))
                   .ok());  // empty name on an opening event
  // A valid minimal B event passes.
  EXPECT_TRUE(ValidateChromeTraceJson(
                  wrap("{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0,"
                       "\"name\":\"x\"}"))
                  .ok());
}

TEST_F(ExportTest, MetadataOnlyTracesCountAsEmpty) {
  const std::string metadata_only =
      "{\"traceEvents\": [{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"name\":\"process_name\",\"args\":{\"name\":\"x\"}}]}";
  EXPECT_FALSE(ValidateChromeTraceJson(metadata_only).ok());
  EXPECT_TRUE(ValidateChromeTraceJson(metadata_only, /*min_events=*/0).ok());
}

TEST_F(ExportTest, WriteFailsOnEmptyTrace) {
  Tracer::Get().Enable();  // enabled but nothing recorded
  const Status status =
      WriteChromeTrace(Tracer::Get(), "/tmp/updlrm_export_test_empty.json");
  EXPECT_FALSE(status.ok());
}

TEST_F(ExportTest, WritesAndValidatesFile) {
  RecordSampleTrace();
  const std::string path = "/tmp/updlrm_export_test_trace.json";
  ASSERT_TRUE(WriteChromeTrace(Tracer::Get(), path).ok());
  EXPECT_TRUE(ValidateChromeTraceFile(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(ValidateChromeTraceFile(path).ok());  // unreadable
}

TEST_F(ExportTest, ContainsEventFindsNonMetadataNames) {
  RecordSampleTrace();
  const std::string json = ToChromeTraceJson(Tracer::Get());
  auto has_kernel = ChromeTraceContainsEvent(json, "kernel");
  ASSERT_TRUE(has_kernel.ok());
  EXPECT_TRUE(*has_kernel);
  auto has_missing = ChromeTraceContainsEvent(json, "nope");
  ASSERT_TRUE(has_missing.ok());
  EXPECT_FALSE(*has_missing);
  // Metadata track names don't count as events.
  auto has_meta = ChromeTraceContainsEvent(json, "process_name");
  ASSERT_TRUE(has_meta.ok());
  EXPECT_FALSE(*has_meta);
}

}  // namespace
}  // namespace updlrm::telemetry
