// Engine stress sweep: functional bit-exactness and accounting
// invariants across system shapes, tile widths, partitioning methods
// and feature combinations.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::core {
namespace {

struct World {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

World MakeWorld(std::uint32_t num_tables, std::uint32_t num_dpus,
                std::uint32_t dim, std::uint64_t seed) {
  World w;
  w.config.num_tables = num_tables;
  w.config.rows_per_table = 900;
  w.config.embedding_dim = dim;
  w.config.dense_features = 4;
  w.config.bottom_hidden = {8};
  w.config.top_hidden = {8};
  w.config.seed = seed;
  auto model = dlrm::DlrmModel::Create(w.config);
  UPDLRM_CHECK(model.ok());
  w.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());

  trace::DatasetSpec spec;
  spec.name = "stress";
  spec.num_items = 900;
  spec.avg_reduction = 14.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.15;
  spec.clique_prob = 0.5;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 70;  // deliberately not a batch multiple
  options.num_tables = num_tables;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  w.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = num_dpus;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = true;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  w.system = std::move(system).value();
  w.dense = dlrm::DenseInputs::Generate(70, 4, seed + 1);
  return w;
}

using StressParam =
    std::tuple<partition::Method, std::uint32_t /*tables*/,
               std::uint32_t /*dpus*/, std::uint32_t /*dim*/,
               std::uint32_t /*replicate*/>;

class EngineStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(EngineStress, BitExactWithFullAccounting) {
  const auto [method, tables, dpus, dim, replicate] = GetParam();
  World w = MakeWorld(tables, dpus, dim, 41 + tables + dim);

  EngineOptions options;
  options.method = method;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  options.replicate_hot_rows = replicate;
  auto engine = UpDlrmEngine::Create(w.model.get(), w.config, w.trace,
                                     w.system.get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Run the whole trace (70 samples => 4 full batches + a 6-sample
  // tail) and verify every batch bit-exactly.
  std::vector<float> expected(static_cast<std::size_t>(tables) * dim);
  for (const auto& range : trace::MakeBatches(70, 16)) {
    auto batch = (*engine)->RunBatch(range, &w.dense);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->pooled.size(), range.size() * expected.size());
    for (std::size_t s = 0; s < range.size(); ++s) {
      w.model->PooledEmbeddingsFixed(w.trace, range.begin + s, expected);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(batch->pooled[s * expected.size() + i], expected[i])
            << "sample " << range.begin + s << " lane " << i;
      }
    }
    EXPECT_GT(batch->total, 0.0);
  }

  // Accounting invariant: total routed reads (EMT + cache) never exceed
  // the trace's lookups (caching only collapses), and every lookup is
  // replicated across its group's column shards.
  std::uint64_t trace_lookups = 0;
  for (const auto& table : w.trace.tables) {
    trace_lookups += table.num_lookups();
  }
  std::uint64_t routed = 0;
  for (std::uint32_t d = 0; d < w.system->num_dpus(); ++d) {
    routed += w.system->dpu(d).stats().lookups +
              w.system->dpu(d).stats().cache_reads;
  }
  const std::uint32_t col_shards = dim / (*engine)->nc();
  EXPECT_LE(routed, trace_lookups * col_shards);
  EXPECT_GT(routed, 0u);
  if (method == partition::Method::kUniform && replicate == 0) {
    EXPECT_EQ(routed, trace_lookups * col_shards);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineStress,
    ::testing::Values(
        // method, tables, dpus, dim, replicate
        StressParam{partition::Method::kUniform, 2, 8, 8, 0},
        StressParam{partition::Method::kUniform, 4, 16, 16, 0},
        StressParam{partition::Method::kNonUniform, 2, 16, 8, 0},
        StressParam{partition::Method::kNonUniform, 3, 24, 16, 64},
        StressParam{partition::Method::kCacheAware, 2, 8, 8, 0},
        StressParam{partition::Method::kCacheAware, 4, 32, 16, 0},
        StressParam{partition::Method::kCacheAware, 2, 16, 32, 128},
        StressParam{partition::Method::kCacheAware, 1, 8, 8, 32}),
    [](const auto& info) {
      return std::string(partition::MethodShortName(
                 std::get<0>(info.param))) +
             "_t" + std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_dim" +
             std::to_string(std::get<3>(info.param)) + "_r" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace updlrm::core
