#include "updlrm/hetero.h"

#include <gtest/gtest.h>

#include <memory>

#include "trace/generator.h"

namespace updlrm::core {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
};

Fixture MakeFixture(std::vector<std::uint32_t> bottom = {16},
                    std::vector<std::uint32_t> top = {16}) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = std::move(bottom);
  f.config.top_hidden = std::move(top);

  trace::DatasetSpec spec;
  spec.name = "het";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 0.9;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.3;
  spec.num_hot_items = 64;
  spec.seed = 9;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();
  return f;
}

HeteroOptions SmallOptions() {
  HeteroOptions options;
  options.engine.method = partition::Method::kNonUniform;
  options.engine.nc = 4;
  options.engine.batch_size = 16;
  options.engine.reserved_io_bytes = 128 * kKiB;
  return options;
}

TEST(HeteroTest, RunsAndReportsComponents) {
  Fixture f = MakeFixture();
  auto hetero = UpDlrmHetero::Create(f.config, f.trace, f.system.get(),
                                     SmallOptions());
  ASSERT_TRUE(hetero.ok()) << hetero.status().ToString();
  auto batch = (*hetero)->RunBatch({0, 16});
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->stages.EmbeddingTotal(), 0.0);
  EXPECT_GT(batch->gpu_bottom, 0.0);
  EXPECT_GT(batch->gpu_top, 0.0);
  EXPECT_GT(batch->pcie, 0.0);
  EXPECT_GT(batch->total, batch->stages.EmbeddingTotal());
}

TEST(HeteroTest, EmbeddingPipelineMatchesPlainEngine) {
  Fixture f1 = MakeFixture();
  Fixture f2 = MakeFixture();
  HeteroOptions options = SmallOptions();
  auto hetero = UpDlrmHetero::Create(f1.config, f1.trace, f1.system.get(),
                                     options);
  auto plain = UpDlrmEngine::Create(nullptr, f2.config, f2.trace,
                                    f2.system.get(), options.engine);
  ASSERT_TRUE(hetero.ok() && plain.ok());
  auto hb = (*hetero)->RunBatch({0, 16});
  auto pb = (*plain)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(hb.ok() && pb.ok());
  EXPECT_DOUBLE_EQ(hb->stages.cpu_to_dpu, pb->stages.cpu_to_dpu);
  EXPECT_DOUBLE_EQ(hb->stages.dpu_lookup, pb->stages.dpu_lookup);
  EXPECT_DOUBLE_EQ(hb->stages.dpu_to_cpu, pb->stages.dpu_to_cpu);
}

TEST(HeteroTest, OverlapHidesBottomMlp) {
  Fixture f1 = MakeFixture();
  Fixture f2 = MakeFixture();
  HeteroOptions overlap = SmallOptions();
  overlap.overlap_bottom_mlp = true;
  HeteroOptions serial = SmallOptions();
  serial.overlap_bottom_mlp = false;
  auto a = UpDlrmHetero::Create(f1.config, f1.trace, f1.system.get(),
                                overlap);
  auto b = UpDlrmHetero::Create(f2.config, f2.trace, f2.system.get(),
                                serial);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunBatch({0, 16});
  auto rb = (*b)->RunBatch({0, 16});
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_LT(ra->total, rb->total);
}

TEST(HeteroTest, RunAllAggregates) {
  Fixture f = MakeFixture();
  auto hetero = UpDlrmHetero::Create(f.config, f.trace, f.system.get(),
                                     SmallOptions());
  ASSERT_TRUE(hetero.ok());
  auto report = (*hetero)->RunAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_batches, 6u);  // 96 / 16
  EXPECT_EQ(report->num_samples, 96u);
  EXPECT_GT(report->AvgBatchTotal(), 0.0);
}

TEST(HeteroTest, GpuPaysOffOnlyForHeavyDenseStacks) {
  // The crossover the paper's future work hinges on: with tiny MLPs the
  // PCIe + sync overheads make the heterogeneous system slower than
  // CPU-side MLPs; with wide stacks the GPU wins.
  auto total_for = [](std::vector<std::uint32_t> bottom,
                      std::vector<std::uint32_t> top, bool gpu) {
    Fixture f = MakeFixture(std::move(bottom), std::move(top));
    if (gpu) {
      auto hetero = UpDlrmHetero::Create(f.config, f.trace,
                                         f.system.get(), SmallOptions());
      UPDLRM_CHECK(hetero.ok());
      auto r = (*hetero)->RunBatch({0, 16});
      UPDLRM_CHECK(r.ok());
      return r->total;
    }
    auto engine = UpDlrmEngine::Create(nullptr, f.config, f.trace,
                                       f.system.get(),
                                       SmallOptions().engine);
    UPDLRM_CHECK(engine.ok());
    auto r = (*engine)->RunBatch({0, 16}, nullptr);
    UPDLRM_CHECK(r.ok());
    return r->total;
  };

  // Tiny stacks: CPU-side MLPs win.
  EXPECT_LT(total_for({16}, {16}, false), total_for({16}, {16}, true));
  // Very wide stacks: the GPU side wins despite the overheads.
  const std::vector<std::uint32_t> wide = {4096, 4096, 4096};
  EXPECT_GT(total_for(wide, wide, false), total_for(wide, wide, true));
}

TEST(HeteroTest, RejectsBadOptions) {
  Fixture f = MakeFixture();
  HeteroOptions options = SmallOptions();
  options.sync_overhead_ns = -1.0;
  EXPECT_FALSE(
      UpDlrmHetero::Create(f.config, f.trace, f.system.get(), options)
          .ok());
  options = SmallOptions();
  options.gpu.mlp_efficiency = 0.0;
  EXPECT_FALSE(
      UpDlrmHetero::Create(f.config, f.trace, f.system.get(), options)
          .ok());
}

}  // namespace
}  // namespace updlrm::core
