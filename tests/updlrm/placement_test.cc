#include "updlrm/placement.h"

#include <gtest/gtest.h>

#include <vector>

#include "partition/cache_aware.h"
#include "partition/uniform.h"

namespace updlrm::core {
namespace {

pim::DpuSystemConfig SmallSystemConfig() {
  pim::DpuSystemConfig config;
  config.num_dpus = 8;
  config.dpus_per_rank = 8;
  config.dpu.mram_bytes = 1 * kMiB;
  config.functional = true;
  return config;
}

constexpr std::uint64_t kReservedIo = 128 * kKiB;

partition::PartitionPlan UniformPlan(std::uint64_t rows,
                                     std::uint32_t dpus,
                                     std::uint32_t nc) {
  auto geom =
      partition::GroupGeometry::Make(dlrm::TableShape{rows, 8}, dpus, nc);
  UPDLRM_CHECK(geom.ok());
  auto plan = partition::UniformPartition(*geom);
  UPDLRM_CHECK(plan.ok());
  return std::move(plan).value();
}

TEST(PlacementTest, LayoutRegionsAreDisjointAndOrdered) {
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), kReservedIo, true);
  ASSERT_TRUE(group.ok());
  const MramLayout& l = group->layout;
  EXPECT_EQ(l.emt_base, 0u);
  EXPECT_LE(l.emt_base + l.emt_bytes, l.cache_base);
  EXPECT_LE(l.cache_base + l.cache_bytes, l.index_base);
  EXPECT_LE(l.index_base + l.index_bytes, l.output_base);
  EXPECT_LE(l.output_base + l.output_bytes, 1 * kMiB);
  EXPECT_TRUE(IsAligned(l.cache_base, 8));
  EXPECT_TRUE(IsAligned(l.index_base, 8));
}

TEST(PlacementTest, RowSlotsAreDensePerBin) {
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), kReservedIo, true);
  ASSERT_TRUE(group.ok());
  // 2 col shards => 4 bins of 25 rows; slots 0..24 within each bin.
  ASSERT_EQ(group->row_slot.size(), 100u);
  std::vector<std::vector<bool>> seen(4, std::vector<bool>(25, false));
  for (std::uint64_t r = 0; r < 100; ++r) {
    const std::uint32_t bin = group->plan.row_bin[r];
    const std::uint32_t slot = group->row_slot[r];
    ASSERT_LT(slot, 25u);
    EXPECT_FALSE(seen[bin][slot]);
    seen[bin][slot] = true;
  }
}

TEST(PlacementTest, TimingOnlySkipsRowSlots) {
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), kReservedIo, false);
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->row_slot.empty());
}

TEST(PlacementTest, RejectsTooSmallReservedIo) {
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), 64 * kKiB, true);
  EXPECT_FALSE(group.ok());
}

TEST(PlacementTest, RejectsMramOverflow) {
  pim::DpuSystemConfig config = SmallSystemConfig();
  config.dpu.mram_bytes = 160 * kKiB;  // not enough for EMT + IO regions
  auto group = BuildTableGroup(0, 0, UniformPlan(20'000, 8, 4), config,
                               kReservedIo, true);
  ASSERT_FALSE(group.ok());
  EXPECT_EQ(group.status().code(), StatusCode::kCapacityExceeded);
}

TEST(PlacementTest, PlacedRowsReadBackExactly) {
  auto system = pim::DpuSystem::Create(SmallSystemConfig());
  ASSERT_TRUE(system.ok());
  auto table = dlrm::EmbeddingTable::Create(100, 8, 99);
  ASSERT_TRUE(table.ok());
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), kReservedIo, true);
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(PlaceTable(*table, *group, **system).ok());

  const auto& geom = group->plan.geom;
  std::vector<std::int32_t> expected(8);
  std::vector<std::int32_t> got(geom.nc);
  auto got_bytes = std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(got.data()), geom.nc * 4);
  for (std::uint64_t r : {0ULL, 24ULL, 25ULL, 77ULL, 99ULL}) {
    table->QuantizedRow(r, expected);
    const std::uint32_t bin = group->plan.row_bin[r];
    const std::uint32_t slot = group->row_slot[r];
    for (std::uint32_t c = 0; c < geom.col_shards; ++c) {
      ASSERT_TRUE((*system)
                      ->dpu(group->GlobalDpu(bin, c))
                      .mram()
                      .Read(group->layout.emt_base +
                                static_cast<std::uint64_t>(slot) *
                                    geom.row_bytes(),
                            got_bytes)
                      .ok());
      for (std::uint32_t lane = 0; lane < geom.nc; ++lane) {
        EXPECT_EQ(got[lane], expected[c * geom.nc + lane])
            << "row " << r << " shard " << c;
      }
    }
  }
}

TEST(PlacementTest, CacheSubsetSumsReadBackExactly) {
  auto system = pim::DpuSystem::Create(SmallSystemConfig());
  ASSERT_TRUE(system.ok());
  auto table = dlrm::EmbeddingTable::Create(100, 8, 7);
  ASSERT_TRUE(table.ok());

  auto geom =
      partition::GroupGeometry::Make(dlrm::TableShape{100, 8}, 8, 4);
  ASSERT_TRUE(geom.ok());
  std::vector<std::uint64_t> freq(100, 1);
  cache::CacheRes res;
  res.lists.push_back(cache::CacheList{{2, 5, 9}, 10.0});
  partition::CacheAwareOptions ca;
  ca.capacity = partition::BinCapacity{256 * kKiB, 4 * kKiB};
  auto result = partition::CacheAwarePartition(*geom, freq, res, ca);
  ASSERT_TRUE(result.ok());

  auto group = BuildTableGroup(0, 0, result->plan, SmallSystemConfig(),
                               kReservedIo, true);
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(PlaceTable(*table, *group, **system).ok());

  // Check the full-list subset (mask 0b111) on every column shard.
  std::vector<std::int32_t> q(8);
  std::vector<std::int64_t> expected(8, 0);
  for (std::uint32_t item : {2u, 5u, 9u}) {
    table->QuantizedRow(item, q);
    for (std::uint32_t c = 0; c < 8; ++c) expected[c] += q[c];
  }
  const auto bin = static_cast<std::uint32_t>(group->plan.list_bin[0]);
  std::vector<std::int32_t> got(4);
  auto got_bytes = std::span<std::uint8_t>(
      reinterpret_cast<std::uint8_t*>(got.data()), 16);
  const std::uint64_t offset = group->layout.cache_base +
                               group->list_offset[0] +
                               (0b111 - 1) * group->plan.geom.row_bytes();
  for (std::uint32_t c = 0; c < 2; ++c) {
    ASSERT_TRUE((*system)
                    ->dpu(group->GlobalDpu(bin, c))
                    .mram()
                    .Read(offset, got_bytes)
                    .ok());
    for (std::uint32_t lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(got[lane],
                static_cast<std::int32_t>(expected[c * 4 + lane]));
    }
  }
}

TEST(PlacementTest, PlaceTableRequiresFunctionalSystem) {
  pim::DpuSystemConfig config = SmallSystemConfig();
  config.functional = false;
  auto system = pim::DpuSystem::Create(config);
  ASSERT_TRUE(system.ok());
  auto table = dlrm::EmbeddingTable::Create(100, 8, 1);
  ASSERT_TRUE(table.ok());
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4), config,
                               kReservedIo, true);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(PlaceTable(*table, *group, **system).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PlacementTest, PlaceTableRejectsShapeMismatch) {
  auto system = pim::DpuSystem::Create(SmallSystemConfig());
  ASSERT_TRUE(system.ok());
  auto table = dlrm::EmbeddingTable::Create(50, 8, 1);  // wrong rows
  ASSERT_TRUE(table.ok());
  auto group = BuildTableGroup(0, 0, UniformPlan(100, 8, 4),
                               SmallSystemConfig(), kReservedIo, true);
  ASSERT_TRUE(group.ok());
  EXPECT_FALSE(PlaceTable(*table, *group, **system).ok());
}

}  // namespace
}  // namespace updlrm::core
