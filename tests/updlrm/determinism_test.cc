// The determinism contract of the host execution backend (DESIGN.md
// §"Host execution backend"): thread count changes wall-clock time
// only. Functional outputs, simulated latencies, mined cache lists and
// generated traces must be bit-exact at any width. These tests run the
// same configuration at 1, 2 and 4 threads on a real multi-worker pool
// and compare bytes; they carry the `tsan` ctest label so a
// -DUPDLRM_SANITIZE=thread build exercises the pool under TSan.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/grace.h"
#include "common/thread_pool.h"
#include "pipeline/runner.h"
#include "serve/workload.h"
#include "telemetry/tracer.h"
#include "trace/generator.h"
#include "updlrm/comparison.h"
#include "updlrm/engine.h"
#include "updlrm/scaleout.h"

namespace updlrm::core {
namespace {

// Force a real 4-worker default pool before anything touches
// ThreadPool::Default() (the CI host may report 1 hardware thread,
// which would make num_threads = 0 silently serial).
const bool g_pool_sized = [] {
  ThreadPool::SetDefaultThreads(4);
  return true;
}();

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(bool functional, std::uint64_t seed = 31) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = seed;
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  trace::DatasetSpec spec;
  spec.name = "det";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  f.dense = dlrm::DenseInputs::Generate(96, 5, seed + 1);
  return f;
}

struct EngineRun {
  std::vector<float> pooled;
  std::vector<float> ctr;
  InferenceReport report;
};

EngineRun RunEngineAt(std::uint32_t threads, bool hot_path = false) {
  Fixture f = MakeFixture(/*functional=*/true);
  EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.nc = 4;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  options.num_threads = threads;
  if (hot_path) {
    // All three embedding hot-path levers at once: dedup planning,
    // the WRAM hot-row tier, and coalesced transfer planning.
    options.dedup = true;
    options.wram_cache_rows = 64;
    options.coalesce_transfers = true;
  }
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(), options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

  EngineRun run;
  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  UPDLRM_CHECK(batch.ok());
  run.pooled = std::move(batch->pooled);
  run.ctr = std::move(batch->ctr);
  auto report = (*engine)->RunAll(&f.dense);
  UPDLRM_CHECK(report.ok());
  run.report = std::move(report).value();
  return run;
}

void ExpectSameReport(const InferenceReport& a, const InferenceReport& b) {
  EXPECT_EQ(a.stages.cpu_to_dpu, b.stages.cpu_to_dpu);
  EXPECT_EQ(a.stages.dpu_lookup, b.stages.dpu_lookup);
  EXPECT_EQ(a.stages.dpu_to_cpu, b.stages.dpu_to_cpu);
  EXPECT_EQ(a.stages.cpu_aggregate, b.stages.cpu_aggregate);
  EXPECT_EQ(a.bottom_mlp, b.bottom_mlp);
  EXPECT_EQ(a.interaction_top, b.interaction_top);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.num_samples, b.num_samples);
}

TEST(DeterminismTest, EngineBitExactAcrossThreadCounts) {
  const EngineRun serial = RunEngineAt(1);
  ASSERT_FALSE(serial.pooled.empty());
  for (std::uint32_t threads : {2u, 4u, 0u}) {
    const EngineRun run = RunEngineAt(threads);
    ASSERT_EQ(run.pooled.size(), serial.pooled.size()) << threads;
    for (std::size_t i = 0; i < serial.pooled.size(); ++i) {
      ASSERT_EQ(run.pooled[i], serial.pooled[i])
          << "lane " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(run.ctr, serial.ctr) << threads << " threads";
    ExpectSameReport(run.report, serial.report);
  }
}

TEST(DeterminismTest, HotPathLeversBitExactAcrossThreadCounts) {
  // The dedup gather maps, WRAM pin sets and coalesced transfer plans
  // are all built per (group, bin) task into disjoint slots — enabling
  // every lever must not break the bit-exactness contract.
  const EngineRun serial = RunEngineAt(1, /*hot_path=*/true);
  ASSERT_FALSE(serial.pooled.empty());
  for (std::uint32_t threads : {2u, 4u, 0u}) {
    const EngineRun run = RunEngineAt(threads, /*hot_path=*/true);
    ASSERT_EQ(run.pooled.size(), serial.pooled.size()) << threads;
    for (std::size_t i = 0; i < serial.pooled.size(); ++i) {
      ASSERT_EQ(run.pooled[i], serial.pooled[i])
          << "lane " << i << " at " << threads << " threads";
    }
    ASSERT_EQ(run.ctr, serial.ctr) << threads << " threads";
    ExpectSameReport(run.report, serial.report);
  }
}

TEST(DeterminismTest, HierarchicalReductionBitExactVsFlatMerge) {
  // The reduction planner may reassociate the stage-3 merge into
  // per-rank accumulators + a pairwise tree; int64 lanes are exactly
  // associative, so a multi-rank hierarchical engine must reproduce the
  // flat fixed-order merge bit for bit — at any thread count.
  auto run = [](bool hierarchical, std::uint32_t threads) {
    Fixture f = MakeFixture(/*functional=*/true);
    // Re-house the 8 DPUs as 4 ranks of 2 so the merge tree is real.
    pim::DpuSystemConfig sys = f.system->config();
    sys.dpus_per_rank = 2;
    auto system = pim::DpuSystem::Create(sys);
    UPDLRM_CHECK(system.ok());
    EngineOptions options;
    options.method = partition::Method::kCacheAware;
    options.nc = 4;
    options.batch_size = 16;
    options.reserved_io_bytes = 128 * kKiB;
    options.grace.num_hot_items = 96;
    options.num_threads = threads;
    options.hierarchical_reduction = hierarchical;
    auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                       system->get(), options);
    UPDLRM_CHECK(engine.ok());
    auto batch = (*engine)->RunBatch({0, 32}, &f.dense);
    UPDLRM_CHECK(batch.ok());
    return std::make_pair(std::move(batch->pooled), std::move(batch->ctr));
  };
  const auto flat = run(false, 1);
  ASSERT_FALSE(flat.first.empty());
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    const auto hier = run(true, threads);
    ASSERT_EQ(hier.first, flat.first) << threads << " threads";
    ASSERT_EQ(hier.second, flat.second) << threads << " threads";
  }
}

TEST(DeterminismTest, ShardedServingBitExactAcrossThreadCounts) {
  // End-to-end sharded case: statistical tiering (2 shards + DRAM
  // spill), per-shard engines, integer cross-shard merge. Functional
  // outputs and simulated times must not depend on the thread count.
  auto run = [](std::uint32_t threads) {
    Fixture f = MakeFixture(/*functional=*/true);
    EngineOptions options;
    options.method = partition::Method::kCacheAware;
    options.nc = 4;
    options.batch_size = 16;
    options.reserved_io_bytes = 128 * kKiB;
    options.grace.num_hot_items = 96;
    options.num_threads = threads;
    options.check_mode = true;
    ShardedEngineConfig fleet;
    fleet.shard_system = f.system->config();
    fleet.tiering.num_shards = 2;
    fleet.tiering.dram_epsilon = 0.05;
    auto engine = ShardedEngine::Create(f.model.get(), f.config, f.trace,
                                        fleet, options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
    EngineRun result;
    auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
    UPDLRM_CHECK(batch.ok());
    result.pooled = std::move(batch->pooled);
    result.ctr = std::move(batch->ctr);
    auto report = (*engine)->RunAll(&f.dense);
    UPDLRM_CHECK(report.ok());
    result.report = std::move(report).value();
    UPDLRM_CHECK((*engine)->check_violations() == 0);
    return result;
  };
  const EngineRun serial = run(1);
  ASSERT_FALSE(serial.pooled.empty());
  for (std::uint32_t threads : {2u, 4u}) {
    const EngineRun threaded = run(threads);
    ASSERT_EQ(threaded.pooled, serial.pooled) << threads << " threads";
    ASSERT_EQ(threaded.ctr, serial.ctr) << threads << " threads";
    ExpectSameReport(threaded.report, serial.report);
  }
}

TEST(DeterminismTest, EndToEndPipelineBitExactAcrossThreadsAndTracing) {
  // The full request path — arrivals -> batcher -> DPU embedding run ->
  // data-flow executor -> batched bottom/interaction/top MLPs -> CTR —
  // inherits the contract: thread count and tracing change nothing but
  // wall-clock time. Every CTR float and simulated latency is compared
  // for bit equality.
  auto run = [](std::uint32_t threads, bool tracing) {
    telemetry::Tracer& tracer = telemetry::Tracer::Get();
    if (tracing) {
      tracer.Enable(telemetry::TracerOptions{});
    } else {
      tracer.Disable();
    }
    Fixture f = MakeFixture(/*functional=*/true);
    EngineOptions options;
    options.method = partition::Method::kCacheAware;
    options.nc = 4;
    options.batch_size = 16;
    options.reserved_io_bytes = 128 * kKiB;
    options.grace.num_hot_items = 96;
    options.num_threads = threads;
    auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                       f.system.get(), options);
    UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

    serve::ArrivalOptions arrivals;
    arrivals.process = serve::ArrivalProcess::kPoisson;
    arrivals.qps = 1.0e6;
    arrivals.seed = 5;
    auto requests = serve::GenerateRequests(f.trace, 0, arrivals);
    UPDLRM_CHECK(requests.ok());

    pipeline::DataFlowServeOptions serve_options;
    serve_options.batcher.max_batch_size = 16;
    serve_options.batcher.max_queue_delay_ns = 1.0e6;
    serve_options.plan.depth = 2;
    serve_options.plan.bottom_split = 1;
    serve_options.num_threads = threads;
    auto result = pipeline::RunDataFlowSimulation(**engine, *requests,
                                                  &f.dense, serve_options);
    UPDLRM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    tracer.Disable();
    return std::move(result).value();
  };

  const pipeline::DataFlowServeResult serial = run(1, /*tracing=*/false);
  ASSERT_FALSE(serial.ctr.empty());
  ASSERT_EQ(serial.shed, 0u);
  struct Leg {
    std::uint32_t threads;
    bool tracing;
  };
  for (const Leg leg : {Leg{1, true}, Leg{2, false}, Leg{2, true},
                        Leg{4, false}, Leg{4, true}}) {
    const pipeline::DataFlowServeResult r = run(leg.threads, leg.tracing);
    ASSERT_EQ(r.ctr, serial.ctr)
        << leg.threads << " threads, tracing " << leg.tracing;
    ASSERT_EQ(r.request_latency_ns, serial.request_latency_ns)
        << leg.threads << " threads, tracing " << leg.tracing;
    EXPECT_EQ(r.makespan_ns, serial.makespan_ns);
    EXPECT_EQ(r.num_batches, serial.num_batches);
    EXPECT_EQ(r.utilization.host_mlp_busy_ns,
              serial.utilization.host_mlp_busy_ns);
  }
}

TEST(DeterminismTest, GraceMiningThreadCountInvariant) {
  const Fixture f = MakeFixture(/*functional=*/false);
  cache::GraceOptions options;
  options.num_hot_items = 96;
  options.min_pair_count = 2;

  options.num_threads = 1;
  auto serial = cache::GraceMiner(options).Mine(f.trace.tables[0], 600);
  ASSERT_TRUE(serial.ok());
  ASSERT_FALSE(serial->lists.empty());
  for (std::uint32_t threads : {2u, 4u}) {
    options.num_threads = threads;
    auto mined = cache::GraceMiner(options).Mine(f.trace.tables[0], 600);
    ASSERT_TRUE(mined.ok());
    ASSERT_EQ(mined->lists.size(), serial->lists.size()) << threads;
    for (std::size_t i = 0; i < serial->lists.size(); ++i) {
      EXPECT_EQ(mined->lists[i].items, serial->lists[i].items)
          << "list " << i << " at " << threads << " threads";
      EXPECT_EQ(mined->lists[i].benefit, serial->lists[i].benefit)
          << "list " << i << " at " << threads << " threads";
    }
    const cache::CacheRes rescored_serial =
        cache::ScoreCacheLists(f.trace.tables[0], 600, *serial, 1);
    const cache::CacheRes rescored =
        cache::ScoreCacheLists(f.trace.tables[0], 600, *serial, threads);
    ASSERT_EQ(rescored.lists.size(), rescored_serial.lists.size());
    for (std::size_t i = 0; i < rescored_serial.lists.size(); ++i) {
      EXPECT_EQ(rescored.lists[i].items, rescored_serial.lists[i].items);
      EXPECT_EQ(rescored.lists[i].benefit,
                rescored_serial.lists[i].benefit);
    }
  }
}

TEST(DeterminismTest, TraceGenerationThreadCountInvariant) {
  trace::DatasetSpec spec;
  spec.name = "det";
  spec.num_items = 2000;
  spec.avg_reduction = 20.0;
  spec.zipf_alpha = 1.05;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.4;
  spec.num_hot_items = 256;
  spec.seed = 77;
  trace::TraceGeneratorOptions options;
  options.num_samples = 256;
  options.num_tables = 6;
  options.popularity_drift = 0.3;

  options.num_threads = 1;
  auto serial = trace::TraceGenerator(spec).Generate(options);
  ASSERT_TRUE(serial.ok());
  for (std::uint32_t threads : {4u, 0u}) {
    options.num_threads = threads;
    auto parallel = trace::TraceGenerator(spec).Generate(options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->tables.size(), serial->tables.size());
    for (std::size_t t = 0; t < serial->tables.size(); ++t) {
      ASSERT_TRUE(std::ranges::equal(parallel->tables[t].indices(),
                                     serial->tables[t].indices()))
          << "table " << t << " at " << threads << " threads";
      ASSERT_TRUE(std::ranges::equal(parallel->tables[t].offsets(),
                                     serial->tables[t].offsets()))
          << "table " << t << " at " << threads << " threads";
    }
  }
}

TEST(DeterminismTest, ComparisonThreadCountInvariant) {
  auto run = [](std::uint32_t threads) {
    const Fixture f = MakeFixture(/*functional=*/false);
    ComparisonOptions options;
    options.batch_size = 16;
    options.engine.nc = 4;
    options.engine.reserved_io_bytes = 128 * kKiB;
    options.engine.grace.num_hot_items = 96;
    options.system.num_dpus = 8;
    options.system.dpus_per_rank = 8;
    options.system.dpu.mram_bytes = 1 * kMiB;
    options.num_threads = threads;
    auto comparison = CompareSystems(f.config, f.trace, options);
    UPDLRM_CHECK_MSG(comparison.ok(),
                     comparison.status().ToString().c_str());
    return std::move(comparison).value();
  };
  const SystemComparison serial = run(1);
  const SystemComparison parallel = run(0);
  EXPECT_EQ(parallel.dlrm_cpu.AvgBatchTotal(),
            serial.dlrm_cpu.AvgBatchTotal());
  EXPECT_EQ(parallel.dlrm_hybrid.AvgBatchTotal(),
            serial.dlrm_hybrid.AvgBatchTotal());
  EXPECT_EQ(parallel.fae.AvgBatchTotal(), serial.fae.AvgBatchTotal());
  EXPECT_EQ(parallel.fae_hot_fraction, serial.fae_hot_fraction);
  ExpectSameReport(parallel.updlrm, serial.updlrm);
  EXPECT_EQ(parallel.nc, serial.nc);
}

}  // namespace
}  // namespace updlrm::core
