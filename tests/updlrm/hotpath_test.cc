// The embedding hot path's three levers (DESIGN.md §"Embedding hot
// path"): batch dedup planning, the pinned WRAM hot-row tier, and the
// coalesced transfer plan. Dedup and WRAM pinning change timing
// accounting only — pooled outputs must stay bit-identical with any
// lever combination — and the wire/cycle win rules mean no lever may
// regress the modeled embedding time.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "partition/uniform.h"
#include "pim/stats_summary.h"
#include "trace/generator.h"
#include "updlrm/dedup.h"
#include "updlrm/engine.h"
#include "updlrm/placement.h"

namespace updlrm::core {
namespace {

// ---------------------------------------------------------------------
// PlanDedup: the per-bin byte-win rule and stream separation.

std::vector<DedupKey> RowKeys(std::initializer_list<std::uint64_t> rows) {
  std::vector<DedupKey> keys;
  for (std::uint64_t r : rows) keys.push_back(MakeDedupKey(DedupStream::kRow, r));
  return keys;
}

TEST(DedupPlanTest, EmptyBufferIsNotApplied) {
  std::vector<DedupKey> keys;
  const DedupPlan plan = PlanDedup(keys);
  EXPECT_FALSE(plan.applied);
  EXPECT_EQ(plan.refs, 0u);
  EXPECT_EQ(plan.UniqueTotal(), 0u);
  EXPECT_EQ(plan.SavedReads(), 0u);
  EXPECT_EQ(plan.index_list_bytes, 0u);
}

TEST(DedupPlanTest, CollapsesCrossSampleDuplicates) {
  // 16 references naming only 3 distinct rows: raw wire is 16*4 = 64 B,
  // dedup wire is AlignUp(3*4 + 16*2, 8) + 8 = 56 B — dedup wins.
  std::vector<DedupKey> keys;
  for (int i = 0; i < 16; ++i) {
    keys.push_back(MakeDedupKey(DedupStream::kRow, i % 3));
  }
  const DedupPlan plan = PlanDedup(keys);
  EXPECT_TRUE(plan.applied);
  EXPECT_EQ(plan.refs, 16u);
  EXPECT_EQ(plan.unique_rows, 3u);
  EXPECT_EQ(plan.SavedReads(), 13u);
  EXPECT_EQ(plan.index_list_bytes, 56u);
}

TEST(DedupPlanTest, AllUniqueKeepsRawEncoding) {
  auto keys = RowKeys({0, 1, 2, 3, 4, 5, 6, 7});
  const DedupPlan plan = PlanDedup(keys);
  EXPECT_FALSE(plan.applied);
  EXPECT_EQ(plan.unique_rows, 8u);
  EXPECT_EQ(plan.SavedReads(), 0u);
  EXPECT_EQ(plan.index_list_bytes, 8u * 4u);  // raw: 4 B per reference
}

TEST(DedupPlanTest, MarginalDuplicationFailsByteRule) {
  // 4 refs over 3 uniques: raw 16 B, dedup AlignUp(12+8,8)+8 = 32 B.
  // The header plus gather map outweigh one saved index — keep raw.
  auto keys = RowKeys({7, 7, 8, 9});
  const DedupPlan plan = PlanDedup(keys);
  EXPECT_FALSE(plan.applied);
  EXPECT_EQ(plan.index_list_bytes, 16u);
}

TEST(DedupPlanTest, StreamsNeverCollapseTogether) {
  // Row 5 read as an EMT slice, a WRAM pin and a cache subset sum are
  // three different reads; equal values must not merge across tiers.
  std::vector<DedupKey> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(MakeDedupKey(DedupStream::kRow, 5));
    keys.push_back(MakeDedupKey(DedupStream::kWram, 5));
    keys.push_back(MakeDedupKey(DedupStream::kCache, 5));
  }
  const DedupPlan plan = PlanDedup(keys);
  EXPECT_TRUE(plan.applied);
  EXPECT_EQ(plan.unique_rows, 1u);
  EXPECT_EQ(plan.unique_wram, 1u);
  EXPECT_EQ(plan.unique_cache, 1u);
  EXPECT_EQ(plan.SavedReads(), 24u - 3u);
}

TEST(DedupPlanTest, PlanIsAFunctionOfTheMultiset) {
  // Routing order must not matter: any permutation of the same keys
  // yields the identical plan (the determinism contract's foundation).
  std::vector<DedupKey> a;
  for (int i = 0; i < 64; ++i) {
    a.push_back(MakeDedupKey(DedupStream::kRow, (i * 7) % 11));
  }
  std::vector<DedupKey> b(a.rbegin(), a.rend());
  const DedupPlan pa = PlanDedup(a);
  const DedupPlan pb = PlanDedup(b);
  EXPECT_EQ(pa.applied, pb.applied);
  EXPECT_EQ(pa.unique_rows, pb.unique_rows);
  EXPECT_EQ(pa.index_list_bytes, pb.index_list_bytes);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));  // both sorted
}

// ---------------------------------------------------------------------
// BuildWramCache: deterministic hottest-first pinning per bin.

pim::DpuSystemConfig SmallSystemConfig() {
  pim::DpuSystemConfig config;
  config.num_dpus = 8;
  config.dpus_per_rank = 8;
  config.dpu.mram_bytes = 1 * kMiB;
  config.functional = true;
  return config;
}

TableGroup UniformGroup(std::uint64_t rows) {
  auto geom = partition::GroupGeometry::Make(dlrm::TableShape{rows, 8}, 8, 4);
  UPDLRM_CHECK(geom.ok());
  auto plan = partition::UniformPartition(*geom);
  UPDLRM_CHECK(plan.ok());
  auto group = BuildTableGroup(0, 0, std::move(plan).value(),
                               SmallSystemConfig(), 128 * kKiB, true);
  UPDLRM_CHECK(group.ok());
  return std::move(group).value();
}

TEST(WramCacheTest, PinsHottestRowsPerBin) {
  TableGroup group = UniformGroup(100);  // 4 bins of 25 rows
  std::vector<std::uint64_t> freq(100, 1);
  // Make rows 3 and 7 of every bin the hottest.
  for (std::uint32_t bin = 0; bin < 4; ++bin) {
    freq[bin * 25 + 3] = 100;
    freq[bin * 25 + 7] = 50;
  }
  BuildWramCache(group, freq, 2);
  ASSERT_EQ(group.wram_cached.size(), 100u);
  ASSERT_EQ(group.wram_rows_per_bin.size(), 4u);
  for (std::uint32_t bin = 0; bin < 4; ++bin) {
    EXPECT_EQ(group.wram_rows_per_bin[bin], 2u);
    for (std::uint32_t slot = 0; slot < 25; ++slot) {
      const std::uint32_t row = bin * 25 + slot;
      EXPECT_EQ(group.wram_cached[row] != 0, slot == 3 || slot == 7)
          << "row " << row;
    }
  }
}

TEST(WramCacheTest, ColdRowsAreNeverPinned) {
  TableGroup group = UniformGroup(100);
  std::vector<std::uint64_t> freq(100, 0);
  freq[4] = 9;  // the only referenced row
  BuildWramCache(group, freq, 8);
  EXPECT_EQ(std::accumulate(group.wram_cached.begin(),
                            group.wram_cached.end(), 0u),
            1u);
  EXPECT_EQ(group.wram_cached[4], 1u);
}

TEST(WramCacheTest, TiesBreakByLowestRowId) {
  TableGroup group = UniformGroup(100);
  const std::vector<std::uint64_t> freq(100, 7);  // all equally hot
  BuildWramCache(group, freq, 3);
  for (std::uint32_t bin = 0; bin < 4; ++bin) {
    for (std::uint32_t slot = 0; slot < 25; ++slot) {
      EXPECT_EQ(group.wram_cached[bin * 25 + slot] != 0, slot < 3);
    }
  }
}

TEST(WramCacheTest, ZeroRowsIsANoOp) {
  TableGroup group = UniformGroup(100);
  const std::vector<std::uint64_t> freq(100, 7);
  BuildWramCache(group, freq, 0);
  EXPECT_TRUE(group.wram_cached.empty());
  EXPECT_TRUE(group.wram_rows_per_bin.empty());
}

// ---------------------------------------------------------------------
// Engine integration: lever combinations preserve functional outputs
// and never regress the modeled embedding time.

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(std::uint64_t seed = 31) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = seed;
  auto model = dlrm::DlrmModel::Create(f.config);
  UPDLRM_CHECK(model.ok());
  f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());

  trace::DatasetSpec spec;
  spec.name = "hotpath";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = true;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  f.dense = dlrm::DenseInputs::Generate(96, 5, seed + 1);
  return f;
}

struct LeverRun {
  std::vector<float> pooled;
  std::vector<float> ctr;
  InferenceReport report;
  pim::DpuStatsSummary stats;
};

LeverRun RunWithLevers(bool dedup, std::uint32_t wram, bool coalesce) {
  Fixture f = MakeFixture();
  EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.nc = 4;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  options.dedup = dedup;
  options.wram_cache_rows = wram;
  options.coalesce_transfers = coalesce;
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(), options);
  UPDLRM_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

  LeverRun run;
  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  UPDLRM_CHECK(batch.ok());
  run.pooled = std::move(batch->pooled);
  run.ctr = std::move(batch->ctr);
  auto report = (*engine)->RunAll(&f.dense);
  UPDLRM_CHECK(report.ok());
  run.report = std::move(report).value();
  run.stats = pim::SummarizeStats(*f.system);
  return run;
}

TEST(HotPathEngineTest, LeversNeverChangeFunctionalOutputs) {
  const LeverRun base = RunWithLevers(false, 0, false);
  ASSERT_FALSE(base.pooled.empty());
  const LeverRun combos[] = {
      RunWithLevers(true, 0, false),   // dedup only
      RunWithLevers(false, 64, false), // WRAM tier only
      RunWithLevers(false, 0, true),   // coalesced transfers only
      RunWithLevers(true, 64, true),   // all three
  };
  for (const LeverRun& run : combos) {
    ASSERT_EQ(run.pooled.size(), base.pooled.size());
    for (std::size_t i = 0; i < base.pooled.size(); ++i) {
      ASSERT_EQ(run.pooled[i], base.pooled[i]) << "lane " << i;
    }
    ASSERT_EQ(run.ctr, base.ctr);
  }
}

TEST(HotPathEngineTest, LeversNeverRegressEmbeddingTime) {
  const LeverRun base = RunWithLevers(false, 0, false);
  const double baseline = base.report.EmbeddingTotal();
  EXPECT_LE(RunWithLevers(true, 0, false).report.EmbeddingTotal(), baseline);
  EXPECT_LE(RunWithLevers(false, 0, true).report.EmbeddingTotal(), baseline);
  EXPECT_LE(RunWithLevers(false, 64, false).report.EmbeddingTotal(),
            baseline);
  EXPECT_LE(RunWithLevers(true, 64, true).report.EmbeddingTotal(), baseline);
}

TEST(HotPathEngineTest, WramTierActuallyHits) {
  const LeverRun base = RunWithLevers(false, 0, false);
  EXPECT_EQ(base.stats.total_wram_hits, 0u);
  const LeverRun wram = RunWithLevers(false, 64, false);
  EXPECT_GT(wram.stats.total_wram_hits, 0u);
  EXPECT_GT(wram.stats.wram_hit_share, 0.0);
  // Hits replace MRAM row reads one for one; batch geometry is fixed.
  EXPECT_LT(wram.report.stages.dpu_lookup, base.report.stages.dpu_lookup);
}

TEST(HotPathEngineTest, DedupCountersStayConsistent) {
  const LeverRun dedup = RunWithLevers(true, 0, false);
  // Dedup may or may not fire at this scale, but the accounting must be
  // coherent: saved reads and pushed bytes move together.
  if (dedup.stats.total_dedup_saved_reads > 0) {
    const LeverRun base = RunWithLevers(false, 0, false);
    EXPECT_LT(dedup.stats.total_index_bytes_pushed,
              base.stats.total_index_bytes_pushed);
    EXPECT_GT(dedup.stats.dedup_saved_share, 0.0);
  }
}

}  // namespace
}  // namespace updlrm::core
