#include "updlrm/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "trace/generator.h"

namespace updlrm::core {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(bool functional = true, std::uint64_t seed = 31) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = seed;
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  trace::DatasetSpec spec;
  spec.name = "eng";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;  // 4 per table
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  f.dense = dlrm::DenseInputs::Generate(96, 5, seed + 1);
  return f;
}

EngineOptions SmallEngineOptions(partition::Method method,
                                 std::uint32_t nc = 0) {
  EngineOptions options;
  options.method = method;
  options.nc = nc;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  return options;
}

// ---- Functional equivalence: the headline correctness property. ----

class EngineEquivalence
    : public ::testing::TestWithParam<
          std::tuple<partition::Method, std::uint32_t>> {};

TEST_P(EngineEquivalence, PooledEmbeddingsBitExactVsReference) {
  const auto [method, nc] = GetParam();
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(),
                                     SmallEngineOptions(method, nc));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->pooled.size(), 16u * 2 * 8);

  std::vector<float> expected(2 * 8);
  for (std::size_t s = 0; s < 16; ++s) {
    f.model->PooledEmbeddingsFixed(f.trace, s, expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Bit-exact: identical integer arithmetic, different order.
      ASSERT_EQ(batch->pooled[s * 16 + i], expected[i])
          << "sample " << s << " lane " << i << " method "
          << partition::MethodName(method) << " nc " << nc;
    }
  }
}

TEST_P(EngineEquivalence, CtrMatchesReferenceForward) {
  const auto [method, nc] = GetParam();
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(),
                                     SmallEngineOptions(method, nc));
  ASSERT_TRUE(engine.ok());
  auto batch = (*engine)->RunBatch({16, 32}, &f.dense);
  ASSERT_TRUE(batch.ok());
  const auto expected =
      f.model->ForwardBatch(f.dense, f.trace, {16, 32}, /*fixed=*/true);
  ASSERT_EQ(batch->ctr.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch->ctr[i], expected[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndNc, EngineEquivalence,
    ::testing::Combine(::testing::Values(partition::Method::kUniform,
                                         partition::Method::kNonUniform,
                                         partition::Method::kCacheAware),
                       ::testing::Values(0u, 2u, 4u, 8u)),
    [](const auto& info) {
      return std::string(partition::MethodShortName(
                 std::get<0>(info.param))) +
             "_nc" + std::to_string(std::get<1>(info.param));
    });

// ---- Engine behaviour and timing structure. ----

TEST(EngineTest, AutoNcRecordsOptimizerResult) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 0));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->tile_optimization().has_value());
  EXPECT_EQ((*engine)->nc(), (*engine)->tile_optimization()->best.nc);
  EXPECT_FALSE((*engine)->tile_optimization()->candidates.empty());
}

TEST(EngineTest, ForcedNcSkipsOptimizer) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->nc(), 4u);
  EXPECT_FALSE((*engine)->tile_optimization().has_value());
}

TEST(EngineTest, StageLatenciesArePositive) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kNonUniform, 4));
  ASSERT_TRUE(engine.ok());
  auto batch = (*engine)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->stages.cpu_to_dpu, 0.0);
  EXPECT_GT(batch->stages.dpu_lookup, 0.0);
  EXPECT_GT(batch->stages.dpu_to_cpu, 0.0);
  EXPECT_GT(batch->stages.cpu_aggregate, 0.0);
  EXPECT_GT(batch->bottom_mlp, 0.0);
  EXPECT_GE(batch->total, batch->stages.EmbeddingTotal());
}

TEST(EngineTest, TimingOnlyModeMatchesFunctionalTiming) {
  // Timing must not depend on whether MRAM contents are materialized.
  Fixture functional = MakeFixture(true);
  Fixture timing = MakeFixture(false);
  auto e1 = UpDlrmEngine::Create(
      functional.model.get(), functional.config, functional.trace,
      functional.system.get(),
      SmallEngineOptions(partition::Method::kCacheAware, 4));
  auto e2 = UpDlrmEngine::Create(
      nullptr, timing.config, timing.trace, timing.system.get(),
      SmallEngineOptions(partition::Method::kCacheAware, 4));
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto b1 = (*e1)->RunBatch({0, 16}, nullptr);
  auto b2 = (*e2)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_DOUBLE_EQ(b1->stages.cpu_to_dpu, b2->stages.cpu_to_dpu);
  EXPECT_DOUBLE_EQ(b1->stages.dpu_lookup, b2->stages.dpu_lookup);
  EXPECT_DOUBLE_EQ(b1->stages.dpu_to_cpu, b2->stages.dpu_to_cpu);
  EXPECT_TRUE(b2->pooled.empty());
  EXPECT_EQ(timing.system->TotalHighWatermark(), 0u);
}

TEST(EngineTest, CacheAwareReducesLookupTimeOnHotTrace) {
  // The §3.3 claim in miniature: CA stage-2 time <= NU stage-2 time on a
  // co-occurrence-heavy trace.
  Fixture f1 = MakeFixture(false);
  Fixture f2 = MakeFixture(false);
  auto nu = UpDlrmEngine::Create(
      nullptr, f1.config, f1.trace, f1.system.get(),
      SmallEngineOptions(partition::Method::kNonUniform, 4));
  auto ca = UpDlrmEngine::Create(
      nullptr, f2.config, f2.trace, f2.system.get(),
      SmallEngineOptions(partition::Method::kCacheAware, 4));
  ASSERT_TRUE(nu.ok() && ca.ok());
  auto rnu = (*nu)->RunAll(nullptr);
  auto rca = (*ca)->RunAll(nullptr);
  ASSERT_TRUE(rnu.ok() && rca.ok());
  EXPECT_LT(rca->stages.dpu_lookup, rnu->stages.dpu_lookup);
}

TEST(EngineTest, RunAllAggregatesBatches) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_TRUE(engine.ok());
  auto report = (*engine)->RunAll(&f.dense);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_batches, 6u);  // 96 samples / 16
  EXPECT_EQ(report->num_samples, 96u);
  EXPECT_GT(report->total, 0.0);
  EXPECT_GT(report->AvgBatchTotal(), 0.0);
}

TEST(EngineTest, DpuStatsAccumulate) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->RunBatch({0, 16}, nullptr).ok());
  std::uint64_t total_lookups = 0;
  std::uint64_t total_lookups_per_shard = 0;
  for (std::uint32_t d = 0; d < f.system->num_dpus(); ++d) {
    total_lookups += f.system->dpu(d).stats().lookups;
  }
  // Each lookup is replicated across the 2 column shards (nc=4, dim=8).
  std::uint64_t trace_lookups = 0;
  for (const auto& table : f.trace.tables) {
    trace_lookups += table.offsets()[16];
  }
  total_lookups_per_shard = total_lookups / 2;
  EXPECT_EQ(total_lookups_per_shard, trace_lookups);
}

// ---- Error handling. ----

TEST(EngineTest, RejectsMismatchedTraceTables) {
  Fixture f = MakeFixture();
  f.config.num_tables = 4;  // trace has 2
  auto model = dlrm::DlrmModel::Create(f.config);
  ASSERT_TRUE(model.ok());
  auto engine = UpDlrmEngine::Create(
      &model.value(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  EXPECT_FALSE(engine.ok());
}

TEST(EngineTest, RejectsIndivisibleDpuCount) {
  Fixture f = MakeFixture();
  pim::DpuSystemConfig sys;
  sys.num_dpus = 7;  // not divisible by 2 tables
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());
  auto engine = UpDlrmEngine::Create(
      nullptr, f.config, f.trace, system->get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  EXPECT_FALSE(engine.ok());
}

TEST(EngineTest, RejectsFunctionalModelOnTimingSystem) {
  Fixture f = MakeFixture();
  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = false;
  auto system = pim::DpuSystem::Create(sys);
  ASSERT_TRUE(system.ok());
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, system->get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, RejectsInvalidBatchRange) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->RunBatch({0, 0}, nullptr).ok());
  EXPECT_FALSE((*engine)->RunBatch({90, 200}, nullptr).ok());
}

TEST(EngineTest, RejectsBadOptions) {
  Fixture f = MakeFixture();
  EngineOptions options = SmallEngineOptions(partition::Method::kUniform, 4);
  options.cache_capacity_fraction = 1.5;
  EXPECT_FALSE(UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                    f.system.get(), options)
                   .ok());
  options = SmallEngineOptions(partition::Method::kUniform, 4);
  options.batch_size = 0;
  EXPECT_FALSE(UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                    f.system.get(), options)
                   .ok());
}

TEST(EngineTest, RunSamplesMatchesRunBatchOnContiguousRange) {
  // RunBatch is specified as the contiguous special case of RunSamples;
  // the serving batcher relies on that equivalence.
  Fixture f1 = MakeFixture();
  Fixture f2 = MakeFixture();
  auto e1 = UpDlrmEngine::Create(
      f1.model.get(), f1.config, f1.trace, f1.system.get(),
      SmallEngineOptions(partition::Method::kCacheAware, 4));
  auto e2 = UpDlrmEngine::Create(
      f2.model.get(), f2.config, f2.trace, f2.system.get(),
      SmallEngineOptions(partition::Method::kCacheAware, 4));
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto by_range = (*e1)->RunBatch({16, 32}, &f1.dense);
  std::vector<std::size_t> samples(16);
  for (std::size_t i = 0; i < 16; ++i) samples[i] = 16 + i;
  auto by_list = (*e2)->RunSamples(samples, &f2.dense);
  ASSERT_TRUE(by_range.ok() && by_list.ok());
  ASSERT_EQ(by_list->pooled.size(), by_range->pooled.size());
  for (std::size_t i = 0; i < by_range->pooled.size(); ++i) {
    ASSERT_EQ(by_list->pooled[i], by_range->pooled[i]) << i;
  }
  ASSERT_EQ(by_list->ctr.size(), by_range->ctr.size());
  for (std::size_t i = 0; i < by_range->ctr.size(); ++i) {
    EXPECT_EQ(by_list->ctr[i], by_range->ctr[i]) << i;
  }
  EXPECT_DOUBLE_EQ(by_list->stages.cpu_to_dpu, by_range->stages.cpu_to_dpu);
  EXPECT_DOUBLE_EQ(by_list->stages.dpu_lookup, by_range->stages.dpu_lookup);
  EXPECT_DOUBLE_EQ(by_list->stages.dpu_to_cpu, by_range->stages.dpu_to_cpu);
  EXPECT_DOUBLE_EQ(by_list->stages.cpu_aggregate,
                   by_range->stages.cpu_aggregate);
}

TEST(EngineTest, RunSamplesHandlesNonContiguousLists) {
  // A shed-gap batch: samples {3, 7, 40, 41, 90} must pool exactly the
  // per-sample reference rows, in list order.
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kNonUniform, 4));
  ASSERT_TRUE(engine.ok());
  const std::vector<std::size_t> samples = {3, 7, 40, 41, 90};
  auto batch = (*engine)->RunSamples(samples, nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->pooled.size(), samples.size() * 2 * 8);
  std::vector<float> expected(2 * 8);
  for (std::size_t s = 0; s < samples.size(); ++s) {
    f.model->PooledEmbeddingsFixed(f.trace, samples[s], expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(batch->pooled[s * 16 + i], expected[i])
          << "slot " << s << " lane " << i;
    }
  }
}

TEST(EngineTest, RunSamplesRejectsBadLists) {
  Fixture f = MakeFixture();
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      SmallEngineOptions(partition::Method::kUniform, 4));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->RunSamples({}, nullptr).ok());
  const std::vector<std::size_t> out_of_range = {0, 96};
  EXPECT_FALSE((*engine)->RunSamples(out_of_range, nullptr).ok());
}

TEST(EngineTest, ReplicationKeepsPooledEmbeddingsBitExact) {
  // Replicated rows come from the replica region of an adaptively
  // chosen DPU — the functional result must not change.
  Fixture f = MakeFixture();
  EngineOptions options =
      SmallEngineOptions(partition::Method::kCacheAware, 4);
  options.replicate_hot_rows = 32;
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->groups()[0].plan.has_replication());
  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  std::vector<float> expected(2 * 8);
  for (std::size_t s = 0; s < 16; ++s) {
    f.model->PooledEmbeddingsFixed(f.trace, s, expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(batch->pooled[s * 16 + i], expected[i])
          << "sample " << s << " lane " << i;
    }
  }
}

TEST(EngineTest, ReplicationReducesStage2OnSkewedTrace) {
  Fixture f1 = MakeFixture(false);
  Fixture f2 = MakeFixture(false);
  EngineOptions plain =
      SmallEngineOptions(partition::Method::kNonUniform, 4);
  EngineOptions replicated = plain;
  replicated.replicate_hot_rows = 64;
  auto a = UpDlrmEngine::Create(nullptr, f1.config, f1.trace,
                                f1.system.get(), plain);
  auto b = UpDlrmEngine::Create(nullptr, f2.config, f2.trace,
                                f2.system.get(), replicated);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunAll(nullptr);
  auto rb = (*b)->RunAll(nullptr);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_LE(rb->stages.dpu_lookup, ra->stages.dpu_lookup * 1.001);
}

TEST(EngineTest, ReplicationClampsToBinCapacityInsteadOfFailing) {
  // Regression: replicate_hot_rows larger than the bins can hold used to
  // abort Setup with CAPACITY_EXCEEDED (bench/abl_replication at high k).
  // The engine now sheds replicas to the largest feasible count and
  // warns; functional results stay bit-exact against the reference.
  Fixture f = MakeFixture();
  EngineOptions options =
      SmallEngineOptions(partition::Method::kNonUniform, 4);
  options.replicate_hot_rows = 1u << 20;  // far beyond 1 MiB MRAM bins
  auto engine = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                     f.system.get(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const auto& g : (*engine)->groups()) {
    EXPECT_LT(g.plan.replicated_rows.size(), options.replicate_hot_rows);
  }
  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_GT(batch->max_index_bytes, 0u);
  EXPECT_GT(batch->max_output_bytes, 0u);
  std::vector<float> expected(2 * 8);
  for (std::size_t s = 0; s < 16; ++s) {
    f.model->PooledEmbeddingsFixed(f.trace, s, expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(batch->pooled[s * 16 + i], expected[i])
          << "sample " << s << " lane " << i;
    }
  }
}

TEST(EngineTest, PreminedCacheMatchesFreshMining) {
  Fixture f1 = MakeFixture(false);
  Fixture f2 = MakeFixture(false);
  EngineOptions options =
      SmallEngineOptions(partition::Method::kCacheAware, 4);

  // Mine once with the same GraceOptions the engine would use.
  std::vector<cache::CacheRes> premined;
  cache::GraceMiner miner(options.grace);
  for (std::uint32_t t = 0; t < f1.config.num_tables; ++t) {
    auto res = miner.Mine(f1.trace.tables[t], f1.config.rows_per_table);
    ASSERT_TRUE(res.ok());
    premined.push_back(std::move(res).value());
  }

  auto fresh = UpDlrmEngine::Create(nullptr, f1.config, f1.trace,
                                    f1.system.get(), options);
  options.premined_cache = &premined;
  auto reused = UpDlrmEngine::Create(nullptr, f2.config, f2.trace,
                                     f2.system.get(), options);
  ASSERT_TRUE(fresh.ok() && reused.ok());
  auto rf = (*fresh)->RunBatch({0, 16}, nullptr);
  auto rr = (*reused)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(rf.ok() && rr.ok());
  EXPECT_DOUBLE_EQ(rf->stages.dpu_lookup, rr->stages.dpu_lookup);
  EXPECT_DOUBLE_EQ(rf->stages.cpu_to_dpu, rr->stages.cpu_to_dpu);
}

TEST(EngineTest, PreminedCacheSizeMustMatchTables) {
  Fixture f = MakeFixture(false);
  EngineOptions options =
      SmallEngineOptions(partition::Method::kCacheAware, 4);
  std::vector<cache::CacheRes> wrong_size(1);
  options.premined_cache = &wrong_size;
  EXPECT_FALSE(UpDlrmEngine::Create(nullptr, f.config, f.trace,
                                    f.system.get(), options)
                   .ok());
}

TEST(EngineTest, SequentialTransfersSlowerThanPadded) {
  Fixture f1 = MakeFixture(false);
  Fixture f2 = MakeFixture(false);
  EngineOptions padded =
      SmallEngineOptions(partition::Method::kNonUniform, 4);
  EngineOptions ragged = padded;
  ragged.pad_transfers = false;
  auto a = UpDlrmEngine::Create(nullptr, f1.config, f1.trace,
                                f1.system.get(), padded);
  auto b = UpDlrmEngine::Create(nullptr, f2.config, f2.trace,
                                f2.system.get(), ragged);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunBatch({0, 16}, nullptr);
  auto rb = (*b)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // NU index buffers are ragged, so the sequential path must cost more.
  EXPECT_LT(ra->stages.cpu_to_dpu, rb->stages.cpu_to_dpu);
}

TEST(EngineTest, CacheCapacityFractionShrinksCache) {
  Fixture full = MakeFixture(false);
  Fixture tiny = MakeFixture(false);
  EngineOptions options =
      SmallEngineOptions(partition::Method::kCacheAware, 4);
  auto e_full = UpDlrmEngine::Create(nullptr, full.config, full.trace,
                                     full.system.get(), options);
  options.cache_capacity_fraction = 0.3;
  auto e_tiny = UpDlrmEngine::Create(nullptr, tiny.config, tiny.trace,
                                     tiny.system.get(), options);
  ASSERT_TRUE(e_full.ok() && e_tiny.ok());
  std::size_t full_lists = 0;
  std::size_t tiny_lists = 0;
  for (const auto& g : (*e_full)->groups()) {
    full_lists += g.plan.cache.lists.size();
  }
  for (const auto& g : (*e_tiny)->groups()) {
    tiny_lists += g.plan.cache.lists.size();
  }
  EXPECT_LT(tiny_lists, full_lists);
  EXPECT_GT(full_lists, 0u);
}

}  // namespace
}  // namespace updlrm::core
