#include "updlrm/pipelining.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::core {
namespace {

StageBreakdown Batch(Nanos s1, Nanos s2, Nanos s3, Nanos agg = 0.0) {
  StageBreakdown b;
  b.cpu_to_dpu = s1;
  b.dpu_lookup = s2;
  b.dpu_to_cpu = s3;
  b.cpu_aggregate = agg;
  return b;
}

TEST(PipeliningTest, SingleBatchGainsNothing) {
  const std::vector<StageBreakdown> batches = {Batch(10, 50, 10)};
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_DOUBLE_EQ(e.serial_ns, 70.0);
  // fill(10) + max(20, 50) + drain(10) = 70 == serial.
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 70.0);
  EXPECT_DOUBLE_EQ(e.Speedup(), 1.0);
}

TEST(PipeliningTest, DpuBoundSteadyState) {
  // Host work per batch 20, DPU work 80: the DPUs bound the pipeline.
  std::vector<StageBreakdown> batches(10, Batch(10, 80, 10));
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_DOUBLE_EQ(e.serial_ns, 1000.0);
  EXPECT_DOUBLE_EQ(e.dpu_work_ns, 800.0);
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 800.0 + 10.0 + 10.0);
  EXPECT_FALSE(e.HostBound());
  EXPECT_NEAR(e.Speedup(), 1000.0 / 820.0, 1e-12);
}

TEST(PipeliningTest, HostBoundSteadyState) {
  std::vector<StageBreakdown> batches(10, Batch(40, 20, 40, 10));
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_TRUE(e.HostBound());
  EXPECT_DOUBLE_EQ(e.host_work_ns, 900.0);
  // fill 40 + 900 + drain (40 + 10) = 990 < serial 1100.
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 990.0);
}

TEST(PipeliningTest, NeverSlowerThanSerial) {
  // Pathological single-stage batches: the bound must clamp to serial.
  std::vector<StageBreakdown> batches(3, Batch(100, 0, 100, 50));
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_LE(e.pipelined_ns, e.serial_ns);
}

TEST(PipeliningTest, HeterogeneousBatches) {
  std::vector<StageBreakdown> batches = {Batch(10, 100, 5),
                                         Batch(30, 10, 5),
                                         Batch(20, 60, 15, 5)};
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_DOUBLE_EQ(e.dpu_work_ns, 170.0);
  EXPECT_DOUBLE_EQ(e.host_work_ns, 10 + 5 + 30 + 5 + 20 + 15 + 5);
  // fill = 10 (first batch s1), drain = 15 + 5 (last batch s3 + agg).
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 170.0 + 10.0 + 20.0);
  EXPECT_GT(e.Speedup(), 1.0);
}

TEST(PipeliningTest, EmptyInputYieldsZeroedEstimate) {
  // Serving loops can reach the estimator before any batch executed;
  // that must be a zeroed estimate, not an abort.
  const std::vector<StageBreakdown> empty;
  const auto e = EstimatePipelinedEmbedding(empty);
  EXPECT_DOUBLE_EQ(e.serial_ns, 0.0);
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 0.0);
  EXPECT_DOUBLE_EQ(e.host_work_ns, 0.0);
  EXPECT_DOUBLE_EQ(e.dpu_work_ns, 0.0);
  EXPECT_DOUBLE_EQ(e.Speedup(), 0.0);
}

TEST(PipeliningTest, OneBatchFillAndDrainDpuBound) {
  // A single DPU-bound batch is pure fill + work + drain: the bound
  // equals serial exactly, with no clamping involved.
  const std::vector<StageBreakdown> batches = {Batch(10, 100, 5, 3)};
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_DOUBLE_EQ(e.serial_ns, 118.0);
  // fill(10) + dpu(100) + drain(5 + 3) = 118 == serial.
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 118.0);
  EXPECT_FALSE(e.HostBound());
}

TEST(PipeliningTest, OneBatchHostBoundClampsToSerial) {
  // Host-bound single batch: max(host, dpu) + fill + drain would
  // double-count the fill/drain transfers, so the serial clamp engages.
  const std::vector<StageBreakdown> batches = {Batch(40, 5, 40, 10)};
  const auto e = EstimatePipelinedEmbedding(batches);
  EXPECT_DOUBLE_EQ(e.serial_ns, 95.0);
  EXPECT_DOUBLE_EQ(e.pipelined_ns, 95.0);
  EXPECT_TRUE(e.HostBound());
}

}  // namespace
}  // namespace updlrm::core
