#include "updlrm/comparison.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace updlrm::core {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  trace::Trace trace;
  ComparisonOptions options;
};

Fixture MakeFixture() {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 2'000;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;

  trace::DatasetSpec spec;
  spec.name = "cmp";
  spec.num_items = 2'000;
  spec.avg_reduction = 16.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.15;
  spec.clique_prob = 0.4;
  spec.num_hot_items = 128;
  spec.seed = 13;
  trace::TraceGeneratorOptions toptions;
  toptions.num_samples = 128;
  toptions.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(toptions);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  f.options.batch_size = 32;
  f.options.engine.method = partition::Method::kCacheAware;
  f.options.engine.nc = 4;
  f.options.engine.reserved_io_bytes = 128 * kKiB;
  f.options.engine.grace.num_hot_items = 128;
  f.options.system.num_dpus = 8;
  f.options.system.dpus_per_rank = 8;
  f.options.system.dpu.mram_bytes = 1 * kMiB;
  return f;
}

TEST(ComparisonTest, RunsAllFourSystems) {
  Fixture f = MakeFixture();
  auto result = CompareSystems(f.config, f.trace, f.options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->dlrm_cpu.num_batches, 4u);  // 128 / 32
  EXPECT_EQ(result->updlrm.num_batches, 4u);
  EXPECT_GT(result->dlrm_cpu.AvgBatchTotal(), 0.0);
  EXPECT_GT(result->dlrm_hybrid.AvgBatchTotal(), 0.0);
  EXPECT_GT(result->fae.AvgBatchTotal(), 0.0);
  EXPECT_GT(result->updlrm.AvgBatchTotal(), 0.0);
  EXPECT_EQ(result->nc, 4u);
  EXPECT_GE(result->fae_hot_fraction, 0.0);
  EXPECT_LE(result->fae_hot_fraction, 1.0);
}

TEST(ComparisonTest, SpeedupHelpersAreConsistent) {
  Fixture f = MakeFixture();
  auto result = CompareSystems(f.config, f.trace, f.options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->UpdlrmSpeedupVsCpu(),
              result->dlrm_cpu.AvgBatchTotal() /
                  result->updlrm.AvgBatchTotal(),
              1e-12);
  // Hybrid can never beat CPU under this model (same gather + extra
  // overheads), so the hybrid speedup is always the larger one.
  EXPECT_GT(result->UpdlrmSpeedupVsHybrid(),
            result->UpdlrmSpeedupVsCpu());
}

TEST(ComparisonTest, ForcesTimingOnlySystem) {
  Fixture f = MakeFixture();
  f.options.system.functional = true;  // must be overridden internally
  auto result = CompareSystems(f.config, f.trace, f.options);
  EXPECT_TRUE(result.ok());
}

TEST(ComparisonTest, PropagatesEngineErrors) {
  Fixture f = MakeFixture();
  f.options.system.num_dpus = 7;  // not divisible by 2 tables
  EXPECT_FALSE(CompareSystems(f.config, f.trace, f.options).ok());
}

TEST(ComparisonTest, RejectsZeroBatch) {
  Fixture f = MakeFixture();
  f.options.batch_size = 0;
  EXPECT_FALSE(CompareSystems(f.config, f.trace, f.options).ok());
}

}  // namespace
}  // namespace updlrm::core
