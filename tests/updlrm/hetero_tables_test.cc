// Heterogeneous-table engine tests: mixed table sizes, per-table traces
// and DPU allocation policies (extension beyond the paper's duplicated
// EMTs).
#include <gtest/gtest.h>

#include <memory>

#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::core {
namespace {

trace::DatasetSpec SpecFor(std::uint64_t items, double avg_red,
                           std::uint64_t seed) {
  trace::DatasetSpec spec;
  spec.name = "het" + std::to_string(items);
  spec.num_items = items;
  spec.avg_reduction = avg_red;
  spec.zipf_alpha = 0.9;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.3;
  spec.num_hot_items = 64;
  spec.seed = seed;
  return spec;
}

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  std::unique_ptr<pim::DpuSystem> system;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(bool functional) {
  Fixture f;
  f.config.num_tables = 3;
  f.config.table_rows = {2'000, 200, 800};  // mixed sizes
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  const trace::DatasetSpec specs[] = {SpecFor(2'000, 24.0, 5),
                                      SpecFor(200, 6.0, 6),
                                      SpecFor(800, 12.0, 7)};
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  auto t = trace::GenerateHeterogeneousTrace(specs, options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();

  pim::DpuSystemConfig sys;
  sys.num_dpus = 16;
  sys.dpus_per_rank = 16;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  auto system = pim::DpuSystem::Create(sys);
  UPDLRM_CHECK(system.ok());
  f.system = std::move(system).value();

  f.dense = dlrm::DenseInputs::Generate(96, 5, 3);
  return f;
}

EngineOptions HeteroOptions(partition::DpuAllocationPolicy policy,
                            std::uint32_t nc = 4) {
  EngineOptions options;
  options.method = partition::Method::kNonUniform;
  options.nc = nc;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.allocation = policy;
  return options;
}

TEST(HeteroTablesTest, GeneratorBuildsPerTableItemCounts) {
  Fixture f = MakeFixture(false);
  EXPECT_EQ(f.trace.ItemsInTable(0), 2'000u);
  EXPECT_EQ(f.trace.ItemsInTable(1), 200u);
  EXPECT_EQ(f.trace.ItemsInTable(2), 800u);
  EXPECT_TRUE(f.trace.Validate().ok());
}

TEST(HeteroTablesTest, PooledEmbeddingsBitExactWithProportionalRows) {
  Fixture f = MakeFixture(true);
  auto engine = UpDlrmEngine::Create(
      f.model.get(), f.config, f.trace, f.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kProportionalRows));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto batch = (*engine)->RunBatch({0, 16}, &f.dense);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::vector<float> expected(3 * 8);
  for (std::size_t s = 0; s < 16; ++s) {
    f.model->PooledEmbeddingsFixed(f.trace, s, expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(batch->pooled[s * 24 + i], expected[i])
          << "sample " << s << " lane " << i;
    }
  }
  // And the CTRs match the reference forward pass exactly.
  const auto ref = f.model->ForwardBatch(f.dense, f.trace, {0, 16}, true);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(batch->ctr[i], ref[i]);
  }
}

TEST(HeteroTablesTest, ProportionalAllocationGivesBigTablesMoreDpus) {
  Fixture f = MakeFixture(false);
  auto engine = UpDlrmEngine::Create(
      nullptr, f.config, f.trace, f.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kProportionalTraffic));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto& groups = (*engine)->groups();
  ASSERT_EQ(groups.size(), 3u);
  // Table 0 carries most lookups (2000 items, reduction 24); it must
  // get the largest group.
  EXPECT_GT(groups[0].plan.geom.dpus_per_table,
            groups[1].plan.geom.dpus_per_table);
  EXPECT_GE(groups[0].plan.geom.dpus_per_table,
            groups[2].plan.geom.dpus_per_table);
}

TEST(HeteroTablesTest, TrafficAllocationBeatsEqualOnSkewedTables) {
  Fixture f1 = MakeFixture(false);
  Fixture f2 = MakeFixture(false);
  auto equal = UpDlrmEngine::Create(
      nullptr, f1.config, f1.trace, f1.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kEqual));
  auto traffic = UpDlrmEngine::Create(
      nullptr, f2.config, f2.trace, f2.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kProportionalTraffic));
  ASSERT_TRUE(equal.ok() && traffic.ok());
  auto re = (*equal)->RunAll(nullptr);
  auto rt = (*traffic)->RunAll(nullptr);
  ASSERT_TRUE(re.ok() && rt.ok());
  // Stage 2 waits on the slowest group; feeding the busy table more
  // DPUs must help.
  EXPECT_LT(rt->stages.dpu_lookup, re->stages.dpu_lookup);
}

TEST(HeteroTablesTest, AutoNcWorksWithAllocationSearch) {
  Fixture f = MakeFixture(false);
  auto engine = UpDlrmEngine::Create(
      nullptr, f.config, f.trace, f.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kProportionalTraffic,
                    /*nc=*/0));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_GT((*engine)->nc(), 0u);
  EXPECT_FALSE((*engine)->tile_optimization().has_value());
  EXPECT_TRUE((*engine)->RunBatch({0, 16}, nullptr).ok());
}

TEST(HeteroTablesTest, MismatchedTraceRowsRejected) {
  Fixture f = MakeFixture(false);
  f.config.table_rows = {2'000, 300, 800};  // table 1 disagrees
  auto engine = UpDlrmEngine::Create(
      nullptr, f.config, f.trace, f.system.get(),
      HeteroOptions(partition::DpuAllocationPolicy::kEqual));
  EXPECT_FALSE(engine.ok());
}

TEST(HeteroTablesTest, ConfigValidation) {
  dlrm::DlrmConfig config;
  config.num_tables = 3;
  config.table_rows = {100, 200};  // wrong count
  config.embedding_dim = 8;
  EXPECT_FALSE(config.Validate().ok());
  config.table_rows = {100, 0, 300};  // empty table
  EXPECT_FALSE(config.Validate().ok());
  config.table_rows = {100, 200, 300};
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.RowsInTable(2), 300u);
  EXPECT_EQ(config.TotalTableBytes(), (100u + 200 + 300) * 8 * 4);
}

}  // namespace
}  // namespace updlrm::core
