// ShardedEngine tests: the degenerate 1-shard fleet is the flat engine
// bit for bit, sharded + tiered serving stays bit-exact vs the flat
// reference, shard routing audits clean, and remote shards price their
// cross-host ingress.
#include "updlrm/scaleout.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/generator.h"
#include "updlrm/engine.h"

namespace updlrm::core {
namespace {

struct Fixture {
  dlrm::DlrmConfig config;
  std::unique_ptr<dlrm::DlrmModel> model;
  trace::Trace trace;
  dlrm::DenseInputs dense = dlrm::DenseInputs::Generate(0, 1, 0);
};

Fixture MakeFixture(bool functional = true, std::uint64_t seed = 47) {
  Fixture f;
  f.config.num_tables = 2;
  f.config.rows_per_table = 600;
  f.config.embedding_dim = 8;
  f.config.dense_features = 5;
  f.config.bottom_hidden = {16};
  f.config.top_hidden = {16};
  f.config.seed = seed;
  if (functional) {
    auto model = dlrm::DlrmModel::Create(f.config);
    UPDLRM_CHECK(model.ok());
    f.model = std::make_unique<dlrm::DlrmModel>(std::move(model).value());
  }

  trace::DatasetSpec spec;
  spec.name = "scaleout";
  spec.num_items = 600;
  spec.avg_reduction = 12.0;
  spec.zipf_alpha = 1.0;
  spec.rank_jitter = 0.1;
  spec.clique_prob = 0.6;
  spec.num_hot_items = 96;
  spec.seed = seed;
  trace::TraceGeneratorOptions options;
  options.num_samples = 96;
  options.num_tables = 2;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  f.trace = std::move(t).value();
  f.dense = dlrm::DenseInputs::Generate(96, 5, seed + 1);
  return f;
}

pim::DpuSystemConfig ShardSystem(bool functional) {
  pim::DpuSystemConfig sys;
  sys.num_dpus = 8;
  sys.dpus_per_rank = 8;
  sys.dpu.mram_bytes = 1 * kMiB;
  sys.functional = functional;
  return sys;
}

EngineOptions SmallOptions() {
  EngineOptions options;
  options.method = partition::Method::kCacheAware;
  options.nc = 4;
  options.batch_size = 16;
  options.reserved_io_bytes = 128 * kKiB;
  options.grace.num_hot_items = 96;
  return options;
}

TEST(ScaleoutTest, DegenerateSingleShardMatchesFlatEngine) {
  Fixture f = MakeFixture();
  auto system = pim::DpuSystem::Create(ShardSystem(true));
  ASSERT_TRUE(system.ok());
  auto flat = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                   system->get(), SmallOptions());
  ASSERT_TRUE(flat.ok());

  ShardedEngineConfig fleet;
  fleet.shard_system = ShardSystem(true);
  // Identity plan: 1 shard, no DRAM spill, zero-frequency rows pinned.
  fleet.tiering.keep_zero_freq_on_pim = true;
  auto sharded = ShardedEngine::Create(f.model.get(), f.config, f.trace,
                                       fleet, SmallOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->num_shards(), 1u);
  EXPECT_EQ((*sharded)->tier_plan().tables[0].dram_rows, 0u);

  auto want = (*flat)->RunBatch({0, 32}, &f.dense);
  auto got = (*sharded)->RunBatch({0, 32}, &f.dense);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(want->pooled, got->pooled);
  EXPECT_EQ(want->ctr, got->ctr);
  EXPECT_EQ(want->stages.cpu_to_dpu, got->stages.cpu_to_dpu);
  EXPECT_EQ(want->stages.dpu_lookup, got->stages.dpu_lookup);
  EXPECT_EQ(want->stages.dpu_to_cpu, got->stages.dpu_to_cpu);
  EXPECT_EQ(want->stages.cpu_aggregate, got->stages.cpu_aggregate);
  EXPECT_EQ(want->bottom_mlp, got->bottom_mlp);
  EXPECT_EQ(want->interaction_top, got->interaction_top);
  EXPECT_EQ(want->total, got->total);
  EXPECT_EQ(want->partial_bytes, got->partial_bytes);
}

TEST(ScaleoutTest, ShardedTieredStaysBitExactVsFlat) {
  Fixture f = MakeFixture();
  auto system = pim::DpuSystem::Create(ShardSystem(true));
  ASSERT_TRUE(system.ok());
  auto flat = UpDlrmEngine::Create(f.model.get(), f.config, f.trace,
                                   system->get(), SmallOptions());
  ASSERT_TRUE(flat.ok());

  ShardedEngineConfig fleet;
  fleet.shard_system = ShardSystem(true);
  fleet.tiering.num_shards = 2;
  fleet.tiering.dram_epsilon = 0.05;  // cold tail served from host DRAM
  EngineOptions options = SmallOptions();
  options.check_mode = true;
  auto sharded =
      ShardedEngine::Create(f.model.get(), f.config, f.trace, fleet, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // The tiering actually split something (otherwise this test is vacuous).
  std::uint64_t dram_rows = 0;
  for (const auto& t : (*sharded)->tier_plan().tables) dram_rows += t.dram_rows;
  EXPECT_GT(dram_rows, 0u);

  auto want = (*flat)->RunBatch({0, 96}, &f.dense);
  auto got = (*sharded)->RunBatch({0, 96}, &f.dense);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Cross-shard + DRAM-tier merge happens in int64 lanes: pooled and
  // CTR outputs are bit-identical to the flat engine over the whole
  // model, even though rows moved tiers and shards.
  EXPECT_EQ(want->pooled, got->pooled);
  EXPECT_EQ(want->ctr, got->ctr);
  EXPECT_EQ((*sharded)->check_violations(), 0u)
      << (*sharded)->fleet_check_report().ToString();
}

TEST(ScaleoutTest, RunAllMatchesBatchedFlatFunctional) {
  Fixture f = MakeFixture();
  ShardedEngineConfig fleet;
  fleet.shard_system = ShardSystem(true);
  fleet.tiering.num_shards = 3;
  fleet.tiering.dram_epsilon = 0.02;
  auto sharded = ShardedEngine::Create(f.model.get(), f.config, f.trace,
                                       fleet, SmallOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto report = (*sharded)->RunAll(&f.dense);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_samples, f.trace.num_samples());
  EXPECT_EQ(report->num_batches, f.trace.num_samples() / 16);
  EXPECT_GT(report->total, 0.0);
}

TEST(ScaleoutTest, TimingOnlyModeRuns) {
  Fixture f = MakeFixture(/*functional=*/false);
  ShardedEngineConfig fleet;
  fleet.shard_system = ShardSystem(false);
  fleet.tiering.num_shards = 2;
  auto sharded = ShardedEngine::Create(nullptr, f.config, f.trace, fleet,
                                       SmallOptions());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_FALSE((*sharded)->functional());
  auto batch = (*sharded)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_TRUE(batch->pooled.empty());
  EXPECT_GT(batch->stages.EmbeddingTotal(), 0.0);
}

TEST(ScaleoutTest, RemoteShardsPayCrossHostIngress) {
  Fixture f = MakeFixture(/*functional=*/false);
  EngineOptions options = SmallOptions();

  ShardedEngineConfig local;
  local.shard_system = ShardSystem(false);
  local.tiering.num_shards = 2;  // both shards on the front-end host
  auto a = ShardedEngine::Create(nullptr, f.config, f.trace, local, options);
  ASSERT_TRUE(a.ok());

  ShardedEngineConfig spread = local;
  spread.fleet_topology.ranks_per_host = 1;  // shard 1 lands on host 1
  auto b = ShardedEngine::Create(nullptr, f.config, f.trace, spread, options);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  auto batch_a = (*a)->RunBatch({0, 16}, nullptr);
  auto batch_b = (*b)->RunBatch({0, 16}, nullptr);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  // The remote shard's stage-1 push and stage-3 pull traverse the
  // network fabric; the per-stage max across shards must go up.
  EXPECT_GT(batch_b->stages.cpu_to_dpu, batch_a->stages.cpu_to_dpu);
  EXPECT_GT(batch_b->stages.dpu_to_cpu, batch_a->stages.dpu_to_cpu);
}

TEST(ScaleoutTest, MisalignedShardHostBoundaryRejected) {
  Fixture f = MakeFixture(/*functional=*/false);
  ShardedEngineConfig fleet;
  fleet.shard_system = ShardSystem(false);
  fleet.shard_system.num_dpus = 16;  // 2 ranks per shard
  fleet.shard_system.dpus_per_rank = 8;
  fleet.tiering.num_shards = 2;
  fleet.fleet_topology.ranks_per_host = 3;  // 2 does not divide 3
  EXPECT_FALSE(fleet.Validate().ok());
}

}  // namespace
}  // namespace updlrm::core
