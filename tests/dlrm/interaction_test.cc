#include "dlrm/interaction.h"

#include <gtest/gtest.h>

#include <vector>

namespace updlrm::dlrm {
namespace {

TEST(InteractionTest, ConcatOutputDim) {
  EXPECT_EQ(InteractionOutputDim(InteractionKind::kConcat, 8, 32),
            9u * 32);
}

TEST(InteractionTest, DotOutputDim) {
  // dense passthrough (dim) + C(9, 2) pairwise dots.
  EXPECT_EQ(InteractionOutputDim(InteractionKind::kDot, 8, 32),
            32u + 36u);
}

TEST(InteractionTest, ConcatLaysOutDenseThenPooled) {
  const std::vector<float> dense = {1.0f, 2.0f};
  const std::vector<float> pooled = {3.0f, 4.0f, 5.0f, 6.0f};  // 2 tables
  std::vector<float> out(6);
  ComputeInteraction(InteractionKind::kConcat, dense, pooled, 2, 2, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(InteractionTest, DotComputesPairwiseProducts) {
  const std::vector<float> dense = {1.0f, 0.0f};
  const std::vector<float> pooled = {0.0f, 1.0f, 1.0f, 1.0f};  // 2 tables
  std::vector<float> out(2 + 3);
  ComputeInteraction(InteractionKind::kDot, dense, pooled, 2, 2, out);
  // passthrough
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  // dense . t0 = 0, dense . t1 = 1, t0 . t1 = 1
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 1.0f);
  EXPECT_FLOAT_EQ(out[4], 1.0f);
}

TEST(InteractionTest, DotIsSymmetricInVectors) {
  // Swapping two identical pooled vectors must not change the output.
  const std::vector<float> dense = {0.5f, -0.5f};
  const std::vector<float> pooled = {1.0f, 2.0f, 1.0f, 2.0f};
  std::vector<float> out(5);
  ComputeInteraction(InteractionKind::kDot, dense, pooled, 2, 2, out);
  EXPECT_FLOAT_EQ(out[2], out[3]);  // dense.t0 == dense.t1
}

TEST(InteractionDeathTest, WrongOutputSizeAborts) {
  const std::vector<float> dense = {1.0f, 2.0f};
  const std::vector<float> pooled = {3.0f, 4.0f};
  std::vector<float> out(3);  // should be 4 for concat
  EXPECT_DEATH(ComputeInteraction(InteractionKind::kConcat, dense, pooled,
                                  1, 2, out),
               "UPDLRM_CHECK");
}

}  // namespace
}  // namespace updlrm::dlrm
