#include "dlrm/model.h"

#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "trace/generator.h"

namespace updlrm::dlrm {
namespace {

DlrmConfig SmallConfig() {
  DlrmConfig config;
  config.num_tables = 4;
  config.rows_per_table = 500;
  config.embedding_dim = 8;
  config.dense_features = 5;
  config.bottom_hidden = {16};
  config.top_hidden = {16};
  return config;
}

trace::Trace SmallTrace(std::uint32_t num_tables = 4) {
  trace::DatasetSpec spec;
  spec.name = "t";
  spec.num_items = 500;
  spec.avg_reduction = 10.0;
  spec.zipf_alpha = 0.9;
  spec.rank_jitter = 0.2;
  spec.clique_prob = 0.4;
  spec.num_hot_items = 64;
  spec.seed = 5;
  trace::TraceGeneratorOptions options;
  options.num_samples = 64;
  options.num_tables = num_tables;
  auto t = trace::TraceGenerator(spec).Generate(options);
  UPDLRM_CHECK(t.ok());
  return std::move(t).value();
}

TEST(DlrmConfigTest, ValidatesShapes) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  DlrmConfig bad = SmallConfig();
  bad.rows_per_table = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.embedding_dim = 7;  // odd: violates 8-byte MRAM alignment
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.num_tables = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DlrmConfigTest, FlopCounts) {
  const DlrmConfig c = SmallConfig();
  EXPECT_EQ(c.BottomFlopsPerSample(), 2ull * (5 * 16 + 16 * 8));
  const std::uint64_t inter = (4 + 1) * 8;
  EXPECT_EQ(c.TopFlopsPerSample(), 2ull * (inter * 16 + 16 * 1));
}

TEST(DenseInputsTest, DeterministicAndShaped) {
  const auto a = DenseInputs::Generate(10, 5, 3);
  const auto b = DenseInputs::Generate(10, 5, 3);
  EXPECT_EQ(a.num_samples(), 10u);
  EXPECT_EQ(a.dim(), 5u);
  for (std::size_t s = 0; s < 10; ++s) {
    const auto sa = a.Sample(s);
    const auto sb = b.Sample(s);
    for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(sa[i], sb[i]);
  }
}

TEST(DlrmModelTest, SharedTablesAliasContent) {
  auto model = DlrmModel::Create(SmallConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(&model->table(0), &model->table(3));
}

TEST(DlrmModelTest, UnsharedTablesDiffer) {
  DlrmConfig config = SmallConfig();
  config.share_table_content = false;
  auto model = DlrmModel::Create(config);
  ASSERT_TRUE(model.ok());
  EXPECT_NE(&model->table(0), &model->table(1));
  EXPECT_NE(model->table(0).Row(0)[0], model->table(1).Row(0)[0]);
}

TEST(DlrmModelTest, PooledEmbeddingsMatchBagSums) {
  auto model = DlrmModel::Create(SmallConfig());
  ASSERT_TRUE(model.ok());
  const auto trace = SmallTrace();
  std::vector<float> pooled(4 * 8);
  model->PooledEmbeddings(trace, 0, pooled);
  for (std::uint32_t t = 0; t < 4; ++t) {
    std::vector<float> expected(8);
    model->table(t).BagSum(trace.tables[t].Sample(0), expected);
    for (std::uint32_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(pooled[t * 8 + c], expected[c]);
    }
  }
}

TEST(DlrmModelTest, FixedPooledCloseToFloat) {
  auto model = DlrmModel::Create(SmallConfig());
  ASSERT_TRUE(model.ok());
  const auto trace = SmallTrace();
  std::vector<float> f(4 * 8), q(4 * 8);
  model->PooledEmbeddings(trace, 3, f);
  model->PooledEmbeddingsFixed(trace, 3, q);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(q[i], f[i], 16.0f / kFixedPointOne + 1e-4f);
  }
}

TEST(DlrmModelTest, CtrInUnitInterval) {
  auto model = DlrmModel::Create(SmallConfig());
  ASSERT_TRUE(model.ok());
  const auto trace = SmallTrace();
  const auto dense = DenseInputs::Generate(64, 5, 1);
  const auto ctr =
      model->ForwardBatch(dense, trace, {0, 16}, /*fixed=*/false);
  ASSERT_EQ(ctr.size(), 16u);
  for (float p : ctr) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(DlrmModelTest, FixedAndFloatForwardAgreeClosely) {
  auto model = DlrmModel::Create(SmallConfig());
  ASSERT_TRUE(model.ok());
  const auto trace = SmallTrace();
  const auto dense = DenseInputs::Generate(64, 5, 1);
  const auto f = model->ForwardBatch(dense, trace, {0, 8}, false);
  const auto q = model->ForwardBatch(dense, trace, {0, 8}, true);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], q[i], 1e-2f);
  }
}

TEST(DlrmModelTest, DotInteractionVariant) {
  DlrmConfig config = SmallConfig();
  config.interaction = InteractionKind::kDot;
  auto model = DlrmModel::Create(config);
  ASSERT_TRUE(model.ok());
  const auto trace = SmallTrace();
  const auto dense = DenseInputs::Generate(64, 5, 1);
  const auto ctr = model->ForwardBatch(dense, trace, {0, 4}, false);
  ASSERT_EQ(ctr.size(), 4u);
  for (float p : ctr) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

}  // namespace
}  // namespace updlrm::dlrm
