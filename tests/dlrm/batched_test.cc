// Randomized equivalence tests for the batched dense path
// (dlrm/batched.h): BatchedMlp / BatchedDlrm must reproduce the
// per-sample reference (Mlp::Forward / DlrmModel::ForwardSample)
// bit-exactly — on the dispatched SIMD leg, on the forced-scalar leg,
// and at every thread fan-out.
#include "dlrm/batched.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "dlrm/interaction.h"

namespace updlrm::dlrm {
namespace {

class BatchedTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ForceScalar(false); }
};

// Random MLP shapes x random inputs: the batched forward equals the
// reference layer loop float-for-float.
TEST_F(BatchedTest, MlpMatchesReferenceOnRandomShapes) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> dims;
    dims.push_back(1 + rng.NextBounded(33));  // input width
    const std::uint32_t depth = 1 + rng.NextBounded(3);
    for (std::uint32_t l = 0; l < depth; ++l) {
      dims.push_back(1 + rng.NextBounded(40));
    }
    const Activation last =
        trial % 2 == 0 ? Activation::kSigmoid : Activation::kNone;
    auto mlp_or = Mlp::Create(dims, last, rng.NextU64());
    ASSERT_TRUE(mlp_or.ok());
    const Mlp& mlp = mlp_or.value();
    const std::uint32_t in_dim = mlp.in_dim();
    const BatchedMlp batched = BatchedMlp::Prepare(mlp);
    ASSERT_EQ(batched.in_dim(), mlp.in_dim());
    ASSERT_EQ(batched.out_dim(), mlp.out_dim());

    const bool scalar = trial % 3 == 0;
    simd::ForceScalar(scalar);
    std::vector<float> in(in_dim);
    for (float& v : in) {
      v = static_cast<float>(rng.NextDouble(-2.0, 2.0));
    }
    const std::vector<float> expected = mlp.Forward(in);
    std::vector<float> got(mlp.out_dim());
    Arena arena;
    batched.ForwardSample(in, got, arena);
    ASSERT_EQ(got.size(), expected.size());
    ASSERT_EQ(0, std::memcmp(got.data(), expected.data(),
                             got.size() * sizeof(float)))
        << "trial " << trial << " scalar=" << scalar;
  }
}

TEST_F(BatchedTest, ForwardBatchEqualsPerSampleForward) {
  Rng rng(12);
  const std::vector<std::uint32_t> dims = {9, 24, 7};
  auto mlp_or = Mlp::Create(dims, Activation::kNone, 99);
  ASSERT_TRUE(mlp_or.ok());
  const Mlp& mlp = mlp_or.value();
  const BatchedMlp batched = BatchedMlp::Prepare(mlp);
  const std::size_t count = 17;
  std::vector<float> in(count * 9);
  for (float& v : in) v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  std::vector<float> out(count * 7);
  Arena arena;
  batched.ForwardBatch(in, count, out, arena);
  for (std::size_t s = 0; s < count; ++s) {
    const std::vector<float> expected =
        mlp.Forward({in.data() + s * 9, 9});
    for (std::size_t o = 0; o < 7; ++o) {
      ASSERT_EQ(out[s * 7 + o], expected[o]) << "sample " << s;
    }
  }
}

DlrmConfig SmallConfig(InteractionKind kind, std::uint64_t seed) {
  DlrmConfig config;
  config.num_tables = 3;
  config.rows_per_table = 64;
  config.embedding_dim = 8;
  config.dense_features = 6;
  config.bottom_hidden = {16, 8};
  config.top_hidden = {12};
  config.interaction = kind;
  config.seed = seed;
  return config;
}

// Full dense path (bottom MLP -> interaction -> top MLP) against
// DlrmModel::ForwardSample, both interaction kinds, both SIMD legs,
// thread fan-out 1/2/4: identical bits everywhere.
TEST_F(BatchedTest, DlrmMatchesForwardSampleExactly) {
  for (const InteractionKind kind :
       {InteractionKind::kConcat, InteractionKind::kDot}) {
    auto model = DlrmModel::Create(SmallConfig(kind, 2024));
    ASSERT_TRUE(model.ok());
    const BatchedDlrm batched(model.value());

    Rng rng(13);
    const std::size_t count = 29;
    const std::uint32_t dense_dim = model->config().dense_features;
    const std::size_t pooled_stride =
        static_cast<std::size_t>(model->config().num_tables) *
        model->config().embedding_dim;
    std::vector<float> dense(count * dense_dim);
    std::vector<float> pooled(count * pooled_stride);
    for (float& v : dense) v = static_cast<float>(rng.NextDouble(-1.5, 1.5));
    for (float& v : pooled) {
      v = static_cast<float>(rng.NextDouble(-1.0, 1.0));
    }

    std::vector<float> expected(count);
    for (std::size_t s = 0; s < count; ++s) {
      expected[s] = model->ForwardSample(
          {dense.data() + s * dense_dim, dense_dim},
          {pooled.data() + s * pooled_stride, pooled_stride});
    }

    for (const bool scalar : {false, true}) {
      simd::ForceScalar(scalar);
      for (const std::uint32_t threads : {1u, 2u, 4u}) {
        std::vector<float> ctr(count, -1.0f);
        batched.Forward(dense, pooled, count, ctr, threads);
        for (std::size_t s = 0; s < count; ++s) {
          ASSERT_EQ(ctr[s], expected[s])
              << "sample " << s << " scalar=" << scalar << " threads="
              << threads << " kind=" << static_cast<int>(kind);
        }
      }
    }
  }
}

}  // namespace
}  // namespace updlrm::dlrm
