#include "dlrm/mlp.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace updlrm::dlrm {
namespace {

TEST(MlpLayerTest, CreateRejectsZeroDims) {
  EXPECT_FALSE(MlpLayer::Create(0, 4, Activation::kRelu, 1).ok());
  EXPECT_FALSE(MlpLayer::Create(4, 0, Activation::kRelu, 1).ok());
}

TEST(MlpLayerTest, ReluClampsNegative) {
  auto layer = MlpLayer::Create(4, 8, Activation::kRelu, 42);
  ASSERT_TRUE(layer.ok());
  const std::array<float, 4> in = {1.0f, -2.0f, 0.5f, 3.0f};
  std::vector<float> out(8);
  layer->Forward(in, out);
  for (float v : out) EXPECT_GE(v, 0.0f);
}

TEST(MlpLayerTest, SigmoidInUnitInterval) {
  auto layer = MlpLayer::Create(4, 4, Activation::kSigmoid, 42);
  ASSERT_TRUE(layer.ok());
  const std::array<float, 4> in = {10.0f, -10.0f, 0.0f, 5.0f};
  std::vector<float> out(4);
  layer->Forward(in, out);
  for (float v : out) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(MlpLayerTest, NoneActivationIsAffine) {
  // f(2x) - f(0) should equal 2 * (f(x) - f(0)) for a linear layer.
  auto layer = MlpLayer::Create(2, 1, Activation::kNone, 7);
  ASSERT_TRUE(layer.ok());
  std::vector<float> zero(1), one(1), two(1);
  layer->Forward(std::array<float, 2>{0.0f, 0.0f}, zero);
  layer->Forward(std::array<float, 2>{1.0f, 2.0f}, one);
  layer->Forward(std::array<float, 2>{2.0f, 4.0f}, two);
  EXPECT_NEAR(two[0] - zero[0], 2.0f * (one[0] - zero[0]), 1e-4f);
}

TEST(MlpLayerTest, FlopsCount) {
  auto layer = MlpLayer::Create(13, 64, Activation::kRelu, 1);
  ASSERT_TRUE(layer.ok());
  EXPECT_EQ(layer->FlopsPerSample(), 2ull * 13 * 64);
}

TEST(MlpTest, CreateRequiresTwoDims) {
  const std::array<std::uint32_t, 1> dims = {4};
  EXPECT_FALSE(Mlp::Create(dims, Activation::kRelu, 1).ok());
}

TEST(MlpTest, StackDimensions) {
  const std::array<std::uint32_t, 4> dims = {13, 64, 32, 16};
  auto mlp = Mlp::Create(dims, Activation::kRelu, 9);
  ASSERT_TRUE(mlp.ok());
  EXPECT_EQ(mlp->in_dim(), 13u);
  EXPECT_EQ(mlp->out_dim(), 16u);
  EXPECT_EQ(mlp->num_layers(), 3u);
  EXPECT_EQ(mlp->FlopsPerSample(),
            2ull * (13 * 64 + 64 * 32 + 32 * 16));
}

TEST(MlpTest, ForwardProducesOutput) {
  const std::array<std::uint32_t, 3> dims = {4, 8, 1};
  auto mlp = Mlp::Create(dims, Activation::kSigmoid, 21);
  ASSERT_TRUE(mlp.ok());
  const std::array<float, 4> in = {0.1f, 0.2f, 0.3f, 0.4f};
  const auto out = mlp->Forward(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0], 0.0f);
  EXPECT_LT(out[0], 1.0f);
}

TEST(MlpTest, DeterministicAcrossInstances) {
  const std::array<std::uint32_t, 3> dims = {4, 8, 2};
  auto a = Mlp::Create(dims, Activation::kRelu, 5);
  auto b = Mlp::Create(dims, Activation::kRelu, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::array<float, 4> in = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_EQ(a->Forward(in), b->Forward(in));
}

TEST(MlpTest, HiddenLayersUseRelu) {
  // With ReLU hidden layers and kNone final activation, scaling a
  // positive-region input is not guaranteed linear, but the final layer
  // itself must be affine: probe by checking determinism and bounds are
  // not sigmoid-squashed.
  const std::array<std::uint32_t, 3> dims = {2, 4, 1};
  auto mlp = Mlp::Create(dims, Activation::kNone, 3);
  ASSERT_TRUE(mlp.ok());
  bool saw_outside_unit = false;
  for (float scale : {1.0f, 10.0f, 100.0f}) {
    const auto out =
        mlp->Forward(std::array<float, 2>{scale, scale});
    if (out[0] > 1.0f || out[0] < 0.0f) saw_outside_unit = true;
  }
  EXPECT_TRUE(saw_outside_unit);
}

}  // namespace
}  // namespace updlrm::dlrm
