#include "dlrm/embedding.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/fixed_point.h"

namespace updlrm::dlrm {
namespace {

TEST(EmbeddingTest, CreateRejectsEmptyShapes) {
  EXPECT_FALSE(EmbeddingTable::Create(0, 4, 1).ok());
  EXPECT_FALSE(EmbeddingTable::Create(4, 0, 1).ok());
}

TEST(EmbeddingTest, DeterministicInit) {
  auto a = EmbeddingTable::Create(10, 4, 7);
  auto b = EmbeddingTable::Create(10, 4, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::uint64_t r = 0; r < 10; ++r) {
    const auto ra = a->Row(r);
    const auto rb = b->Row(r);
    for (std::uint32_t c = 0; c < 4; ++c) EXPECT_EQ(ra[c], rb[c]);
  }
}

TEST(EmbeddingTest, DifferentSeedsDiffer) {
  auto a = EmbeddingTable::Create(10, 4, 7);
  auto b = EmbeddingTable::Create(10, 4, 8);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->Row(0)[0], b->Row(0)[0]);
}

TEST(EmbeddingTest, ValuesWithinFixedPointContract) {
  // N(0, 0.1) init keeps |v| < 1 with enormous margin; spot check.
  auto table = EmbeddingTable::Create(1000, 8, 3);
  ASSERT_TRUE(table.ok());
  for (std::uint64_t r = 0; r < 1000; ++r) {
    for (float v : table->Row(r)) {
      EXPECT_LT(std::abs(v), 1.0f);
    }
  }
}

TEST(EmbeddingTest, BagSumMatchesManual) {
  auto table = EmbeddingTable::Create(8, 4, 5);
  ASSERT_TRUE(table.ok());
  const std::vector<std::uint32_t> indices = {1, 3, 6};
  std::vector<float> out(4);
  table->BagSum(indices, out);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const float expected =
        table->Row(1)[c] + table->Row(3)[c] + table->Row(6)[c];
    EXPECT_FLOAT_EQ(out[c], expected);
  }
}

TEST(EmbeddingTest, BagSumEmptyIsZero) {
  auto table = EmbeddingTable::Create(8, 4, 5);
  ASSERT_TRUE(table.ok());
  std::vector<float> out(4, 1.0f);
  table->BagSum({}, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(EmbeddingTest, BagSumFixedMatchesQuantizedRows) {
  auto table = EmbeddingTable::Create(16, 6, 11);
  ASSERT_TRUE(table.ok());
  const std::vector<std::uint32_t> indices = {0, 7, 15};
  std::vector<std::int64_t> out(6);
  table->BagSumFixed(indices, out);

  std::vector<std::int32_t> q(6);
  std::vector<std::int64_t> expected(6, 0);
  for (std::uint32_t idx : indices) {
    table->QuantizedRow(idx, q);
    for (std::uint32_t c = 0; c < 6; ++c) expected[c] += q[c];
  }
  EXPECT_EQ(out, expected);
}

TEST(EmbeddingTest, FixedAndFloatBagsAgreeWithinQuantization) {
  auto table = EmbeddingTable::Create(100, 8, 13);
  ASSERT_TRUE(table.ok());
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i = 0; i < 100; i += 3) indices.push_back(i);
  std::vector<float> fout(8);
  std::vector<std::int64_t> qout(8);
  table->BagSum(indices, fout);
  table->BagSumFixed(indices, qout);
  const float tol =
      static_cast<float>(indices.size()) / kFixedPointOne + 1e-4f;
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(FromFixedSum(qout[c]), fout[c], tol);
  }
}

TEST(EmbeddingTest, ShapeAccessors) {
  auto table = EmbeddingTable::Create(12, 32, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows(), 12u);
  EXPECT_EQ(table->cols(), 32u);
  EXPECT_EQ(table->shape().SizeBytes(), 12u * 32 * 4);
}

}  // namespace
}  // namespace updlrm::dlrm
